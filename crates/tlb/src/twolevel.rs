//! A two-level TLB hierarchy.
//!
//! Real CPUs pair a tiny, single-cycle L1 TLB with a larger, slower L2
//! (e.g. 64-entry L1 dTLB + 1536-entry L2 on Cascade Lake). Misses in L1
//! that hit L2 cost a few cycles; true misses walk the page table (ε). This
//! model supports the ε-calibration experiments: the measured L1/L2/walk
//! mix determines the effective per-access translation cost.
//!
//! Movement policy (mostly-exclusive, as on AMD L2 TLBs): an L2 hit
//! *promotes* the entry to L1; the L1 victim is demoted to L2; true fills
//! go straight to L1 with the same demotion path.

use crate::full::Tlb;
use crate::key::TlbKey;
use atp_replacement::{AnyPolicy, Lru, Policy, PolicyBuild, PolicyKind};
use atp_types::{Asid, TaggedHugePage, VirtHugePage};

/// Outcome of a two-level lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Hit in the first level (free).
    L1,
    /// Hit in the second level (small cost).
    L2,
    /// Miss in both (page-table walk, cost ε).
    Miss,
}

/// Counters per level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwoLevelStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (promotions).
    pub l2_hits: u64,
    /// Full misses.
    pub misses: u64,
}

/// A two-level TLB with promotion/demotion between levels. The policy
/// parameter `P` is monomorphized per level; [`TwoLevelTlb::new`] selects
/// it at runtime via [`AnyPolicy`], [`TwoLevelTlb::monomorphic`] fixes it
/// statically (e.g. `TwoLevelTlb::<u64, Lru>::monomorphic(..)`).
#[derive(Debug)]
pub struct TwoLevelTlb<V, P: Policy = AnyPolicy, K: TlbKey = VirtHugePage> {
    l1: Tlb<V, P, K>,
    l2: Tlb<V, P, K>,
    stats: TwoLevelStats,
}

impl<V, K: TlbKey> TwoLevelTlb<V, AnyPolicy, K> {
    /// Creates the hierarchy with the given per-level entry counts.
    pub fn new(l1_entries: u64, l2_entries: u64, policy: PolicyKind, seed: u64) -> Self {
        Self {
            l1: Tlb::new(l1_entries, policy, seed),
            l2: Tlb::new(l2_entries, policy, seed ^ 0x11),
            stats: TwoLevelStats::default(),
        }
    }

    /// Cascade-Lake-like defaults: 64-entry L1, 1536-entry L2, LRU.
    pub fn cascade_lake(seed: u64) -> Self {
        Self::new(64, 1536, PolicyKind::Lru, seed)
    }
}

impl<V, K: TlbKey> TwoLevelTlb<V, Lru, K> {
    /// Cascade-Lake-like defaults with a statically dispatched LRU policy.
    pub fn cascade_lake_lru(seed: u64) -> Self {
        Self::monomorphic(64, 1536, seed)
    }
}

impl<V, P: Policy, K: TlbKey> TwoLevelTlb<V, P, K> {
    /// Creates the hierarchy with a statically chosen policy, seeding each
    /// level exactly as [`TwoLevelTlb::new`] does.
    pub fn monomorphic(l1_entries: u64, l2_entries: u64, seed: u64) -> Self
    where
        P: PolicyBuild,
    {
        Self {
            l1: Tlb::monomorphic(l1_entries, seed),
            l2: Tlb::monomorphic(l2_entries, seed ^ 0x11),
            stats: TwoLevelStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> TwoLevelStats {
        self.stats
    }

    /// Total resident entries across both levels.
    pub fn len(&self) -> usize {
        self.l1.len() + self.l2.len()
    }

    /// Whether both levels are empty.
    pub fn is_empty(&self) -> bool {
        self.l1.is_empty() && self.l2.is_empty()
    }

    /// Whether `u` is resident at either level.
    pub fn contains(&self, u: K) -> bool {
        self.l1.contains(u) || self.l2.contains(u)
    }

    fn promote(&mut self, u: K, value: V) {
        if let Some((victim, vval)) = self.l1.insert(u, value) {
            // Demote the L1 victim to L2 (if L2 already holds it — possible
            // only transiently — drop the stale copy first).
            self.l2.invalidate(victim);
            self.l2.insert(victim, vval);
        }
    }

    /// Looks up `u`; on an L2 hit the entry is promoted. `fill` supplies the
    /// value on a full miss. Returns which level serviced the access.
    pub fn access(&mut self, u: K, fill: impl FnOnce() -> V) -> Level {
        if self.l1.lookup(u).is_some() {
            self.stats.l1_hits += 1;
            return Level::L1;
        }
        if self.l2.contains(u) {
            self.stats.l2_hits += 1;
            // atp-lint: allow(unwrap-policy, reason = "invariant: the entry was just found resident in L2")
            let value = self.l2.invalidate(u).expect("resident in L2");
            self.promote(u, value);
            return Level::L2;
        }
        self.stats.misses += 1;
        self.promote(u, fill());
        Level::Miss
    }

    /// Invalidates `u` everywhere (shootdown).
    pub fn invalidate(&mut self, u: K) -> bool {
        let a = self.l1.invalidate(u).is_some();
        let b = self.l2.invalidate(u).is_some();
        a || b
    }
}

/// ASID-aware operations for tagged keys.
impl<V, P: Policy> TwoLevelTlb<V, P, TaggedHugePage> {
    /// Invalidates every entry of `asid` at both levels (global entries
    /// survive). Returns how many entries were removed.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        self.l1.flush_asid(asid) + self.l2.flush_asid(asid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(x: u64) -> VirtHugePage {
        VirtHugePage(x)
    }

    #[test]
    fn levels_report_correctly() {
        let mut t: TwoLevelTlb<u64> = TwoLevelTlb::new(2, 4, PolicyKind::Lru, 0);
        assert_eq!(t.access(u(1), || 10), Level::Miss);
        assert_eq!(t.access(u(1), || 99), Level::L1);
        // Push 1 out of L1 (capacity 2) with two new entries.
        assert_eq!(t.access(u(2), || 20), Level::Miss);
        assert_eq!(t.access(u(3), || 30), Level::Miss);
        // 1 was demoted to L2.
        assert_eq!(t.access(u(1), || 99), Level::L2);
        // And is now back in L1.
        assert_eq!(t.access(u(1), || 99), Level::L1);
    }

    #[test]
    fn demotion_preserves_values() {
        let mut t: TwoLevelTlb<u64> = TwoLevelTlb::new(1, 4, PolicyKind::Lru, 0);
        t.access(u(1), || 111);
        t.access(u(2), || 222); // demotes 1 with its value
        t.access(u(1), || 0); // L2 hit; must carry 111 back up
        assert_eq!(t.access(u(1), || 0), Level::L1);
        // Peek via another demotion round: push 1 down and read through L2.
        t.access(u(3), || 333);
        assert!(t.contains(u(1)));
    }

    #[test]
    fn capacity_filtering_works() {
        // Working set of 6 fits L1+L2 (2+8) after warmup: no further misses.
        let mut t: TwoLevelTlb<()> = TwoLevelTlb::new(2, 8, PolicyKind::Lru, 1);
        for round in 0..20u64 {
            for k in 0..6u64 {
                t.access(u(k), || ());
                // Immediate re-reference: must hit L1.
                t.access(u(k), || ());
                let _ = round;
            }
        }
        let s = t.stats();
        assert_eq!(s.misses, 6, "only compulsory misses");
        assert!(s.l1_hits > 0, "re-references hit L1");
        assert!(s.l2_hits > 0, "cycle distance 6 > L1 capacity hits L2");
    }

    #[test]
    fn invalidate_hits_both_levels() {
        let mut t: TwoLevelTlb<u64> = TwoLevelTlb::new(1, 4, PolicyKind::Lru, 2);
        t.access(u(1), || 1);
        t.access(u(2), || 2); // 1 demoted
        assert!(t.invalidate(u(1)), "in L2");
        assert!(t.invalidate(u(2)), "in L1");
        assert!(!t.invalidate(u(3)));
        assert!(t.is_empty());
    }

    #[test]
    fn stats_sum_to_accesses() {
        let mut t: TwoLevelTlb<()> = TwoLevelTlb::cascade_lake(3);
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(9, 0);
        let n = 10_000;
        for _ in 0..n {
            t.access(u(rng.next_below(3000)), || ());
        }
        let s = t.stats();
        assert_eq!(s.l1_hits + s.l2_hits + s.misses, n);
    }
}
