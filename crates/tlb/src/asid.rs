//! An ASID-tagged TLB front-end with global-entry fallback.
//!
//! [`AsidTlb`] wraps a fully associative [`Tlb`] keyed by
//! [`TaggedHugePage`] and implements the hardware matching rule for
//! tagged TLBs: a lookup from tenant `a` hits an entry tagged `a` *or*
//! an entry tagged global ([`Asid::GLOBAL`] — the kernel/shared bit).
//! Context switches are free (no flush — the outgoing tenant's entries
//! simply stop matching); [`AsidTlb::flush_asid`] models the targeted
//! invalidation issued when an ASID is retired and recycled.
//!
//! Because a private miss falls back to a second (global-key) probe, the
//! inner sim's hit/miss counters over-count probes; [`AsidTlb`] keeps its
//! own per-lookup [`AsidTlbStats`] instead.

use crate::full::Tlb;
use atp_replacement::{AnyPolicy, Lru, Policy, PolicyBuild, PolicyKind};
use atp_types::{Asid, TaggedHugePage, VirtHugePage};

/// Counters for an ASID-tagged TLB, kept per *lookup* (not per probe).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsidTlbStats {
    /// Lookups that matched a private (same-ASID) entry.
    pub private_hits: u64,
    /// Lookups that matched a global entry.
    pub global_hits: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Entries installed (private + global).
    pub inserts: u64,
    /// Entries explicitly invalidated (shootdowns).
    pub invalidations: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// `flush_asid` calls that removed at least one entry.
    pub asid_flushes: u64,
    /// Entries removed by `flush_asid` in total.
    pub flushed_entries: u64,
}

impl AsidTlbStats {
    /// Total hits (private + global).
    pub fn hits(&self) -> u64 {
        self.private_hits + self.global_hits
    }
}

/// A fully associative ASID-tagged TLB shared by all tenants.
///
/// One physical structure holds every tenant's entries plus global
/// entries; capacity pressure is shared, so a noisy tenant evicts its
/// neighbours' translations — exactly the ASID-pressure interference a
/// multi-tenant simulation is after.
#[derive(Debug)]
pub struct AsidTlb<V, P: Policy = Lru> {
    inner: Tlb<V, P, TaggedHugePage>,
    stats: AsidTlbStats,
}

impl<V> AsidTlb<V, AnyPolicy> {
    /// Creates a TLB with `entries` slots and a runtime-selected policy.
    pub fn new(entries: u64, policy: PolicyKind, seed: u64) -> Self {
        Self::from_inner(Tlb::new(entries, policy, seed))
    }
}

impl<V> AsidTlb<V, Lru> {
    /// Creates an LRU TLB, fully monomorphized.
    pub fn lru(entries: u64) -> Self {
        Self::from_inner(Tlb::lru(entries))
    }
}

impl<V, P: Policy> AsidTlb<V, P> {
    /// Creates a TLB with a statically chosen policy built from
    /// `(capacity, seed)`.
    pub fn monomorphic(entries: u64, seed: u64) -> Self
    where
        P: PolicyBuild,
    {
        Self::from_inner(Tlb::monomorphic(entries, seed))
    }

    fn from_inner(inner: Tlb<V, P, TaggedHugePage>) -> Self {
        Self {
            inner,
            stats: AsidTlbStats::default(),
        }
    }

    /// Capacity in entries (shared across all tenants).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Per-lookup counters.
    pub fn stats(&self) -> AsidTlbStats {
        self.stats
    }

    /// Whether tenant `asid` would hit on `huge` (private or global),
    /// without touching recency or counters.
    pub fn contains(&self, asid: Asid, huge: VirtHugePage) -> bool {
        self.inner.contains(TaggedHugePage::new(asid, huge))
            || self.inner.contains(TaggedHugePage::global(huge))
    }

    /// Looks up `huge` on behalf of tenant `asid`: the private entry
    /// matches first, then the global one. The matching entry's recency
    /// is refreshed.
    pub fn lookup(&mut self, asid: Asid, huge: VirtHugePage) -> Option<&V> {
        let private = TaggedHugePage::new(asid, huge);
        let key = if self.inner.contains(private) {
            self.stats.private_hits += 1;
            private
        } else {
            let global = TaggedHugePage::global(huge);
            if self.inner.contains(global) {
                self.stats.global_hits += 1;
                global
            } else {
                self.stats.misses += 1;
                return None;
            }
        };
        self.inner.lookup(key)
    }

    /// Inserts a private entry for tenant `asid`, returning the evicted
    /// entry (possibly another tenant's) if the TLB was full.
    ///
    /// # Panics
    /// Panics if the `(asid, huge)` entry is already resident.
    pub fn insert(
        &mut self,
        asid: Asid,
        huge: VirtHugePage,
        value: V,
    ) -> Option<(TaggedHugePage, V)> {
        self.insert_key(TaggedHugePage::new(asid, huge), value)
    }

    /// Inserts a global (all-tenants) entry.
    ///
    /// # Panics
    /// Panics if the global entry for `huge` is already resident.
    pub fn insert_global(&mut self, huge: VirtHugePage, value: V) -> Option<(TaggedHugePage, V)> {
        self.insert_key(TaggedHugePage::global(huge), value)
    }

    fn insert_key(&mut self, key: TaggedHugePage, value: V) -> Option<(TaggedHugePage, V)> {
        self.stats.inserts += 1;
        let evicted = self.inner.insert(key, value);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Invalidates tenant `asid`'s private entry for `huge` (a targeted
    /// shootdown), returning its value if resident. Global entries are
    /// untouched; use [`AsidTlb::invalidate_global`] for those.
    pub fn invalidate(&mut self, asid: Asid, huge: VirtHugePage) -> Option<V> {
        let v = self.inner.invalidate(TaggedHugePage::new(asid, huge));
        if v.is_some() {
            self.stats.invalidations += 1;
        }
        v
    }

    /// Invalidates the global entry for `huge`, returning its value if
    /// resident.
    pub fn invalidate_global(&mut self, huge: VirtHugePage) -> Option<V> {
        let v = self.inner.invalidate(TaggedHugePage::global(huge));
        if v.is_some() {
            self.stats.invalidations += 1;
        }
        v
    }

    /// Removes every private entry of `asid` (ASID retirement/recycling).
    /// Global entries survive. Returns how many entries were removed.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        let removed = self.inner.flush_asid(asid);
        if removed > 0 {
            self.stats.asid_flushes += 1;
            self.stats.flushed_entries += removed;
        }
        removed
    }

    /// Looks up `(asid, huge)` and on a miss installs a private entry
    /// supplied by `fill`. Returns whether it hit.
    pub fn access_or_fill(
        &mut self,
        asid: Asid,
        huge: VirtHugePage,
        fill: impl FnOnce() -> V,
    ) -> bool {
        if self.lookup(asid, huge).is_some() {
            return true;
        }
        self.insert(asid, huge, fill());
        false
    }

    /// Iterates resident (key, value) pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&TaggedHugePage, &V)> {
        self.inner.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_entries_do_not_leak_across_tenants() {
        let mut t: AsidTlb<u64> = AsidTlb::lru(8);
        t.insert(Asid(1), VirtHugePage(5), 15);
        assert_eq!(t.lookup(Asid(1), VirtHugePage(5)), Some(&15));
        assert_eq!(t.lookup(Asid(2), VirtHugePage(5)), None);
        let s = t.stats();
        assert_eq!((s.private_hits, s.misses), (1, 1));
    }

    #[test]
    fn global_entries_match_every_tenant() {
        let mut t: AsidTlb<u64> = AsidTlb::lru(8);
        t.insert_global(VirtHugePage(3), 33);
        assert_eq!(t.lookup(Asid(1), VirtHugePage(3)), Some(&33));
        assert_eq!(t.lookup(Asid(200), VirtHugePage(3)), Some(&33));
        assert_eq!(t.stats().global_hits, 2);
    }

    #[test]
    fn private_shadows_global() {
        let mut t: AsidTlb<u64> = AsidTlb::lru(8);
        t.insert_global(VirtHugePage(3), 33);
        t.insert(Asid(1), VirtHugePage(3), 11);
        assert_eq!(t.lookup(Asid(1), VirtHugePage(3)), Some(&11));
        assert_eq!(t.lookup(Asid(2), VirtHugePage(3)), Some(&33));
    }

    #[test]
    fn flush_asid_spares_globals_and_other_tenants() {
        let mut t: AsidTlb<u64> = AsidTlb::lru(16);
        for i in 0..4u64 {
            t.insert(Asid(1), VirtHugePage(i), i);
        }
        t.insert(Asid(2), VirtHugePage(0), 20);
        t.insert_global(VirtHugePage(9), 99);
        assert_eq!(t.flush_asid(Asid(1)), 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(Asid(2), VirtHugePage(0)), Some(&20));
        assert_eq!(t.lookup(Asid(7), VirtHugePage(9)), Some(&99));
        let s = t.stats();
        assert_eq!((s.asid_flushes, s.flushed_entries), (1, 4));
    }

    #[test]
    fn capacity_is_shared_interference() {
        // Tenant 2's working set evicts tenant 1's entries: shared pressure.
        let mut t: AsidTlb<()> = AsidTlb::lru(4);
        for i in 0..4u64 {
            t.insert(Asid(1), VirtHugePage(i), ());
        }
        for i in 0..4u64 {
            t.access_or_fill(Asid(2), VirtHugePage(i), || ());
        }
        assert_eq!(t.stats().evictions, 4);
        for i in 0..4u64 {
            assert!(!t.contains(Asid(1), VirtHugePage(i)));
        }
    }

    #[test]
    fn single_tenant_behaves_like_untagged_lru() {
        // Driving only Asid(0) must reproduce the plain Tlb hit/miss
        // sequence exactly (same policy, same capacity).
        let mut tagged: AsidTlb<u64> = AsidTlb::lru(3);
        let mut plain: Tlb<u64> = Tlb::lru(3);
        let trace = [1u64, 2, 3, 1, 4, 2, 5, 1, 1, 3, 4, 5, 2];
        for &p in &trace {
            let a = tagged.access_or_fill(Asid::SINGLE, VirtHugePage(p), || p);
            let b = plain.access_or_fill(VirtHugePage(p), || p);
            assert_eq!(a, b, "diverged at page {p}");
        }
        assert_eq!(tagged.stats().hits(), plain.stats().hits);
        assert_eq!(tagged.stats().misses, plain.stats().misses);
    }

    #[test]
    fn monomorphic_policy_builds() {
        use atp_replacement::Sieve;
        let mut t: AsidTlb<u64, Sieve> = AsidTlb::monomorphic(4, 0);
        assert!(!t.access_or_fill(Asid(1), VirtHugePage(1), || 1));
        assert!(t.access_or_fill(Asid(1), VirtHugePage(1), || 2));
        assert_eq!(t.capacity(), 4);
        assert!(!t.is_empty());
    }
}
