//! A batched, software-pipelined fully-associative LRU TLB.
//!
//! [`BatchTlb`] is the raw-speed translation engine behind the batched
//! drivers: semantically it is exactly `Tlb<V, Lru>` (exact LRU, same
//! counters, same eviction choices — pinned differentially in
//! `atp-check`), but its hot path is built to translate [`LANES`]
//! accesses per pipeline step instead of one:
//!
//! 1. **hash precompute** — all lane keys are Fx-hashed up front, a pure
//!    data-parallel loop with no memory dependencies;
//! 2. **probe** — each lane's hash is resolved through the flat
//!    [`SlotIndex`]; the probe chains are independent, so the CPU can
//!    overlap their cache misses (memory-level parallelism) instead of
//!    serializing one hash→probe→list-update chain per access;
//! 3. **arena prefetch** — the stamp line of every resolved slot is
//!    touched before any lane is applied, pulling the metadata the apply
//!    loop will write into cache;
//! 4. **in-order apply** — lanes are retired in access order. Hits only
//!    update recency, so the precomputed probes stay valid until the
//!    first miss; from that point the remaining lanes **replay
//!    sequentially** through the fused path (an insert may evict any
//!    slot, invalidating later precomputed probes).
//!
//! The replay rule is what keeps batching bit-for-bit equal to the fused
//! single-step engine on every trace, while hit-dominated workloads (the
//! regime the paper's sweeps spend almost all their time in) run the
//! wide path essentially always.
//!
//! Recency is kept as one u64 timestamp per slot from a strictly
//! increasing logical clock — the same LRU order as an intrusive list,
//! without the pointer chase on every hit; eviction pays an O(ℓ) argmin
//! scan instead, which amortizes to noise at TLB hit rates.

use crate::key::TlbKey;
use crate::TlbStats;
use atp_hash::flat::{fx_hash, SlotIndex};
use atp_types::VirtHugePage;

/// Accesses translated per pipeline step.
pub const LANES: usize = 16;

/// Stamp value marking a freed slot (live stamps come from a strictly
/// increasing clock that starts at 0, so they are always below it).
const FREE: u64 = u64::MAX;

/// Probe sentinel for "not resident" (slot ids are below capacity, which
/// is capped below `u32::MAX`).
const MISS: u32 = u32::MAX;

/// A batched software-pipelined LRU TLB of ℓ entries mapping keys to a
/// `Copy` payload `V`. See the module docs for the pipeline; see
/// [`crate::Tlb`] for the single-step engine it is equivalent to.
#[derive(Clone, Debug)]
pub struct BatchTlb<V, K: TlbKey = VirtHugePage> {
    index: SlotIndex,
    /// SoA slot arenas, grown on first use of each slot: the key arena
    /// validates probes, the stamp arena carries recency, and the value
    /// arena is only touched by hits that need the payload.
    keys: Vec<K>,
    vals: Vec<V>,
    stamps: Vec<u64>,
    free: Vec<u32>,
    clock: u64,
    capacity: usize,
    stats: TlbStats,
}

impl<V: Copy, K: TlbKey> BatchTlb<V, K> {
    /// Creates a batched LRU TLB with `entries` slots.
    ///
    /// # Panics
    /// Panics if `entries` is zero or does not fit u32 slot ids.
    pub fn lru(entries: u64) -> Self {
        let capacity = entries as usize;
        Self {
            index: SlotIndex::with_capacity(capacity),
            keys: Vec::with_capacity(capacity),
            vals: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            free: Vec::new(),
            clock: 0,
            capacity,
            stats: TlbStats::default(),
        }
    }

    /// Capacity ℓ.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Event counters (same meaning as [`crate::Tlb::stats`]).
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resolves `u` to its slot without touching recency or counters.
    #[inline]
    fn probe(&self, h: u64, u: K) -> Option<u32> {
        let keys = &self.keys;
        self.index.get(h, |s| keys[s as usize] == u)
    }

    /// Whether `u` is cached, without touching recency or counters.
    pub fn contains(&self, u: K) -> bool {
        self.probe(fx_hash(&u), u).is_some()
    }

    /// Reads a resident value without touching recency or counters.
    pub fn peek(&self, u: K) -> Option<&V> {
        let slot = self.probe(fx_hash(&u), u)?;
        Some(&self.vals[slot as usize])
    }

    /// Looks up `u`, updating recency and hit/miss counters. One probe,
    /// one stamp store — no list maintenance.
    #[inline]
    pub fn lookup(&mut self, u: K) -> Option<&V> {
        match self.probe(fx_hash(&u), u) {
            Some(slot) => {
                self.stamps[slot as usize] = self.clock;
                self.clock += 1;
                self.stats.hits += 1;
                Some(&self.vals[slot as usize])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `u → value`, returning the evicted entry if the TLB was
    /// full.
    ///
    /// # Panics
    /// Panics if `u` is already resident.
    pub fn insert(&mut self, u: K, value: V) -> Option<(K, V)> {
        let h = fx_hash(&u);
        assert!(self.probe(h, u).is_none(), "insert of resident TLB entry");
        self.stats.inserts += 1;
        let mut evicted = None;
        if self.index.len() == self.capacity {
            evicted = Some(self.evict_lru());
            self.stats.evictions += 1;
        }
        let slot = self.free.pop().unwrap_or(self.keys.len() as u32);
        if slot as usize == self.keys.len() {
            self.keys.push(u);
            self.vals.push(value);
            self.stamps.push(self.clock);
        } else {
            self.keys[slot as usize] = u;
            self.vals[slot as usize] = value;
            self.stamps[slot as usize] = self.clock;
        }
        self.clock += 1;
        self.index.insert(h, slot);
        evicted
    }

    /// Evicts the least-recently-stamped entry. Only called on a full
    /// TLB, so every allocated slot is live and the scan covers exactly ℓ
    /// stamps (freed slots are parked at [`FREE`], above any live stamp).
    fn evict_lru(&mut self) -> (K, V) {
        debug_assert_eq!(self.index.len(), self.capacity);
        let mut victim = 0usize;
        let mut oldest = FREE;
        for (slot, &stamp) in self.stamps.iter().enumerate() {
            if stamp < oldest {
                oldest = stamp;
                victim = slot;
            }
        }
        let k = self.keys[victim];
        let v = self.vals[victim];
        self.stamps[victim] = FREE;
        self.index.remove(fx_hash(&k), |s| s as usize == victim);
        self.free.push(victim as u32);
        (k, v)
    }

    /// Invalidates `u`, returning its value if it was resident.
    pub fn invalidate(&mut self, u: K) -> Option<V> {
        let h = fx_hash(&u);
        let keys = &self.keys;
        let slot = self.index.remove(h, |s| keys[s as usize] == u)?;
        self.stats.invalidations += 1;
        self.stamps[slot as usize] = FREE;
        self.free.push(slot);
        Some(self.vals[slot as usize])
    }

    /// Accesses `u` like a hardware lookup-and-fill driven by `fill`:
    /// on a miss, `fill(u)` supplies the new value. Returns whether it
    /// hit. The fused (single-step) path; also the replay path of
    /// [`BatchTlb::access_or_fill_batch`].
    #[inline]
    pub fn access_or_fill(&mut self, u: K, fill: impl FnOnce(K) -> V) -> bool {
        if self.lookup(u).is_some() {
            return true;
        }
        let v = fill(u);
        self.insert(u, v);
        false
    }

    /// Accesses every key in `us` in order, filling misses from `fill`,
    /// and returns how many hit. Bit-for-bit equivalent to calling
    /// [`BatchTlb::access_or_fill`] per key; internally runs the
    /// hash-precompute → probe → prefetch → in-order-apply pipeline over
    /// [`LANES`]-wide steps, replaying sequentially from the first miss
    /// in each step (an insert invalidates later precomputed probes).
    pub fn access_or_fill_batch(&mut self, us: &[K], fill: impl FnMut(K) -> V) -> u64 {
        self.access_or_fill_batch_map(us, |k| k, fill)
    }

    /// [`BatchTlb::access_or_fill_batch`] over a raw stream: each element
    /// of `us` becomes a key through `key` inside the pipeline, so a
    /// driver holding `&[u64]` pages feeds the engine with no staging
    /// copy into a key buffer. `key` must be pure (it is re-applied on
    /// the replay path) and is expected to be a newtype wrap the
    /// optimizer erases.
    pub fn access_or_fill_batch_map<U: Copy>(
        &mut self,
        us: &[U],
        key: impl Fn(U) -> K,
        mut fill: impl FnMut(K) -> V,
    ) -> u64 {
        let mut hits = 0u64;
        for chunk in us.chunks(LANES) {
            // Stage 1: hash precompute (no memory dependencies).
            let mut hs = [0u64; LANES];
            for (i, &u) in chunk.iter().enumerate() {
                hs[i] = fx_hash(&key(u));
            }
            // Stage 2: probe all lanes — independent chains, so the
            // misses overlap instead of serializing.
            let mut slots = [MISS; LANES];
            let keys = &self.keys;
            for (i, &u) in chunk.iter().enumerate() {
                let k = key(u);
                slots[i] = self
                    .index
                    .get(hs[i], |s| keys[s as usize] == k)
                    .unwrap_or(MISS);
            }
            // Stage 3: arena prefetch — touch the stamp metadata every
            // resolved lane will write before any lane retires.
            for &s in &slots[..chunk.len()] {
                if s != MISS {
                    std::hint::black_box(self.stamps[s as usize]);
                }
            }
            // Stage 4: in-order apply. Hits only move recency, so the
            // precomputed probes stay valid until the first miss; the
            // clock and counters advance once per step, not per lane.
            let mut done = 0usize;
            while done < chunk.len() && slots[done] != MISS {
                self.stamps[slots[done] as usize] = self.clock + done as u64;
                done += 1;
            }
            self.clock += done as u64;
            self.stats.hits += done as u64;
            hits += done as u64;
            // Sequential replay from the first miss: the insert below may
            // evict any slot, so later lanes re-probe through the fused
            // path.
            for &u in &chunk[done..] {
                if self.access_or_fill(key(u), &mut fill) {
                    hits += 1;
                }
            }
        }
        hits
    }

    /// Iterates resident (key, value) pairs in slot order (deterministic,
    /// arbitrary from the caller's point of view).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .zip(&self.stamps)
            .filter(|(_, &st)| st != FREE)
            .map(|((k, v), _)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tlb;
    use atp_hash::CounterRng;

    /// Drives a BatchTlb and a fused `Tlb<u64, Lru>` with the same ops
    /// and asserts identical observable behaviour at every step.
    fn assert_matches_fused(ops: &[(u8, u64)], entries: u64, batch: usize) {
        let mut fast: BatchTlb<u64> = BatchTlb::lru(entries);
        let mut gold: Tlb<u64> = Tlb::lru(entries);
        let mut pending: Vec<VirtHugePage> = Vec::new();
        let flush =
            |fast: &mut BatchTlb<u64>, gold: &mut Tlb<u64>, pending: &mut Vec<VirtHugePage>| {
                let fast_hits = fast.access_or_fill_batch(pending, |u| u.0 * 10);
                let mut gold_hits = 0;
                for &u in pending.iter() {
                    if gold.access_or_fill(u, || u.0 * 10) {
                        gold_hits += 1;
                    }
                }
                assert_eq!(fast_hits, gold_hits);
                pending.clear();
            };
        for &(kind, page) in ops {
            let u = VirtHugePage(page);
            match kind {
                0 => {
                    pending.push(u);
                    if pending.len() == batch {
                        flush(&mut fast, &mut gold, &mut pending);
                    }
                }
                _ => {
                    flush(&mut fast, &mut gold, &mut pending);
                    assert_eq!(fast.invalidate(u), gold.invalidate(u));
                }
            }
        }
        flush(&mut fast, &mut gold, &mut pending);
        assert_eq!(fast.stats(), gold.stats());
        assert_eq!(fast.len(), gold.len());
        let mut a: Vec<(u64, u64)> = fast.iter().map(|(k, v)| (k.0, *v)).collect();
        let mut b: Vec<(u64, u64)> = gold.iter().map(|(k, v)| (k.0, *v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "resident sets diverged");
    }

    #[test]
    fn equivalent_to_fused_lru_under_churn() {
        for (seed, span, entries, batch) in [
            (1u64, 40u64, 16u64, 16usize),
            (2, 8, 4, 7),
            (3, 200, 16, 16),
            (4, 13, 8, 1),
            (5, 64, 32, 13),
        ] {
            let mut rng = CounterRng::new(0xBA7C, seed);
            let ops: Vec<(u8, u64)> = (0..4000)
                .map(|_| {
                    let kind = u8::from(rng.next_below(12) == 0);
                    (kind, rng.next_below(span))
                })
                .collect();
            assert_matches_fused(&ops, entries, batch);
        }
    }

    #[test]
    fn duplicate_misses_in_one_step_fill_then_hit() {
        // Same absent page twice in one batch: the first lane misses and
        // fills, the second must hit — exactly like the fused engine.
        let mut t: BatchTlb<u64> = BatchTlb::lru(4);
        let us = [VirtHugePage(9), VirtHugePage(9), VirtHugePage(9)];
        let hits = t.access_or_fill_batch(&us, |u| u.0);
        assert_eq!(hits, 2);
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (2, 1, 1));
    }

    #[test]
    fn batch_wider_than_lanes_splits_into_steps() {
        let mut t: BatchTlb<u64> = BatchTlb::lru(64);
        let us: Vec<VirtHugePage> = (0..50).map(|i| VirtHugePage(i % 25)).collect();
        let hits = t.access_or_fill_batch(&us, |u| u.0);
        assert_eq!(hits, 25, "second lap over 25 pages all hit");
        assert_eq!(t.len(), 25);
    }

    #[test]
    fn eviction_is_exact_lru() {
        let mut t: BatchTlb<u64> = BatchTlb::lru(2);
        t.insert(VirtHugePage(1), 10);
        t.insert(VirtHugePage(2), 20);
        t.lookup(VirtHugePage(1)); // refresh 1 → victim is 2
        assert_eq!(t.insert(VirtHugePage(3), 30), Some((VirtHugePage(2), 20)));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn invalidate_frees_capacity_and_counts() {
        let mut t: BatchTlb<u64> = BatchTlb::lru(2);
        t.insert(VirtHugePage(1), 10);
        t.insert(VirtHugePage(2), 20);
        assert_eq!(t.invalidate(VirtHugePage(1)), Some(10));
        assert_eq!(t.invalidate(VirtHugePage(1)), None);
        assert_eq!(t.insert(VirtHugePage(3), 30), None, "no eviction needed");
        assert_eq!(t.stats().invalidations, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "insert of resident TLB entry")]
    fn double_insert_panics() {
        let mut t: BatchTlb<u64> = BatchTlb::lru(2);
        t.insert(VirtHugePage(1), 1);
        t.insert(VirtHugePage(1), 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut t: BatchTlb<u64> = BatchTlb::lru(2);
        assert_eq!(t.access_or_fill_batch(&[], |u| u.0), 0);
        assert_eq!(t.stats(), TlbStats::default());
    }
}
