//! Parameter-validation errors shared across the workspace.

use core::fmt;

/// Errors produced while validating model parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamError {
    /// A parameter that must be a power of two was not.
    NotPowerOfTwo {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: u64,
    },
    /// A parameter that must be nonzero was zero.
    Zero {
        /// Parameter name.
        name: &'static str,
    },
    /// A parameter exceeded another that must bound it.
    OutOfRange {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: u64,
        /// Human-readable constraint, e.g. "must be <= V".
        constraint: &'static str,
    },
    /// A floating-point parameter was outside its legal interval.
    BadFraction {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint, e.g. "must be in (0,1)".
        constraint: &'static str,
    },
    /// `hmax` must divide `V` (Section 3 assumes it does).
    NotDivisible {
        /// Dividend name.
        dividend: &'static str,
        /// Divisor name.
        divisor: &'static str,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NotPowerOfTwo { name, value } => {
                write!(f, "parameter `{name}` must be a power of two, got {value}")
            }
            ParamError::Zero { name } => write!(f, "parameter `{name}` must be nonzero"),
            ParamError::OutOfRange {
                name,
                value,
                constraint,
            } => write!(f, "parameter `{name}` = {value} out of range: {constraint}"),
            ParamError::BadFraction {
                name,
                value,
                constraint,
            } => write!(f, "parameter `{name}` = {value} invalid: {constraint}"),
            ParamError::NotDivisible { dividend, divisor } => {
                write!(f, "`{divisor}` must divide `{dividend}`")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Result alias for parameter validation.
pub type Result<T> = core::result::Result<T, ParamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_parameter() {
        let e = ParamError::NotPowerOfTwo {
            name: "h",
            value: 3,
        };
        assert!(e.to_string().contains('h'));
        assert!(e.to_string().contains('3'));

        let e = ParamError::Zero { name: "P" };
        assert!(e.to_string().contains('P'));

        let e = ParamError::OutOfRange {
            name: "l",
            value: 10,
            constraint: "must be <= P",
        };
        assert!(e.to_string().contains("must be <= P"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ParamError::Zero { name: "V" });
        assert!(e.to_string().contains('V'));
    }
}
