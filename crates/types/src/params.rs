//! System parameters of the address-translation model (Sections 3 and 5).
//!
//! * `V` — pages in the virtual address space,
//! * `P` — pages in physical memory,
//! * `ℓ` (`tlb_entries`) — entries in the TLB,
//! * `w` (`tlb_value_bits`) — bits per TLB value (set by hardware),
//! * `δ` (`delta`) — resource-augmentation: replacement policies may keep at
//!   most `(1−δ)P` pages resident,
//! * `hmax` — maximum huge-page size in base pages (a power of two dividing
//!   `V`),
//! * `ε` — TLB-miss cost (see [`crate::cost::CostModel`]).

use crate::cost::CostModel;
use crate::error::{ParamError, Result};
use crate::geometry::HugePageGeometry;

/// Validated model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemParams {
    /// `V`: number of virtual pages.
    pub virt_pages: u64,
    /// `P`: number of physical pages.
    pub phys_pages: u64,
    /// `ℓ`: number of TLB entries.
    pub tlb_entries: u64,
    /// `w`: bits per TLB value.
    pub tlb_value_bits: u32,
    /// `δ ∈ [0, 1)`: resource augmentation.
    pub delta: f64,
    /// `hmax`: maximum huge-page size (power of two, divides `V`).
    pub hmax: u64,
    /// Cost model (`ε`).
    pub cost: CostModel,
}

impl SystemParams {
    /// Starts building parameters.
    pub fn builder() -> SystemParamsBuilder {
        SystemParamsBuilder::default()
    }

    /// `m = ⌊(1−δ)·P⌋`: the maximum resident-set size available to a
    /// RAM-replacement policy under resource augmentation δ.
    #[inline]
    pub fn effective_phys_pages(&self) -> u64 {
        ((1.0 - self.delta) * self.phys_pages as f64).floor() as u64
    }

    /// Geometry for huge pages of the maximum size.
    pub fn hmax_geometry(&self) -> HugePageGeometry {
        // atp-lint: allow(unwrap-policy, reason = "invariant: hmax was validated by the builder that produced self")
        HugePageGeometry::new(self.hmax).expect("hmax validated at build time")
    }

    /// Number of size-`hmax` virtual huge pages (`V / hmax`).
    #[inline]
    pub fn virt_huge_pages(&self) -> u64 {
        self.virt_pages / self.hmax
    }
}

/// Builder for [`SystemParams`], with validation on `build`.
#[derive(Clone, Debug)]
pub struct SystemParamsBuilder {
    virt_pages: u64,
    phys_pages: u64,
    tlb_entries: u64,
    tlb_value_bits: u32,
    delta: f64,
    hmax: u64,
    cost: CostModel,
}

impl Default for SystemParamsBuilder {
    fn default() -> Self {
        Self {
            // Defaults mirror a scaled-down version of the paper's setup:
            // 256 Mi of VA (65536 pages), 64 Mi resident (16384 pages),
            // a 1536-entry TLB (Cascade Lake L2 dTLB), 64-bit TLB values.
            virt_pages: 1 << 16,
            phys_pages: 1 << 14,
            tlb_entries: 1536,
            tlb_value_bits: 64,
            delta: 0.0,
            hmax: 1,
            cost: CostModel::default(),
        }
    }
}

impl SystemParamsBuilder {
    /// Sets `V` (number of virtual pages).
    pub fn virt_pages(mut self, v: u64) -> Self {
        self.virt_pages = v;
        self
    }

    /// Sets `P` (number of physical pages).
    pub fn phys_pages(mut self, p: u64) -> Self {
        self.phys_pages = p;
        self
    }

    /// Sets `ℓ` (number of TLB entries).
    pub fn tlb_entries(mut self, l: u64) -> Self {
        self.tlb_entries = l;
        self
    }

    /// Sets `w` (bits per TLB value).
    pub fn tlb_value_bits(mut self, w: u32) -> Self {
        self.tlb_value_bits = w;
        self
    }

    /// Sets `δ` (resource augmentation).
    pub fn delta(mut self, d: f64) -> Self {
        self.delta = d;
        self
    }

    /// Sets `hmax` (maximum huge-page size in base pages).
    pub fn hmax(mut self, h: u64) -> Self {
        self.hmax = h;
        self
    }

    /// Sets the cost model.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Sets `ε` directly.
    pub fn epsilon(mut self, e: f64) -> Self {
        self.cost = CostModel::new(e);
        self
    }

    /// Validates and builds.
    pub fn build(self) -> Result<SystemParams> {
        if self.virt_pages == 0 {
            return Err(ParamError::Zero { name: "virt_pages" });
        }
        if self.phys_pages == 0 {
            return Err(ParamError::Zero { name: "phys_pages" });
        }
        if self.tlb_entries == 0 {
            return Err(ParamError::Zero {
                name: "tlb_entries",
            });
        }
        if self.tlb_value_bits == 0 {
            return Err(ParamError::Zero {
                name: "tlb_value_bits",
            });
        }
        if self.hmax == 0 || !self.hmax.is_power_of_two() {
            return Err(ParamError::NotPowerOfTwo {
                name: "hmax",
                value: self.hmax,
            });
        }
        if !self.virt_pages.is_multiple_of(self.hmax) {
            return Err(ParamError::NotDivisible {
                dividend: "virt_pages",
                divisor: "hmax",
            });
        }
        if !(0.0..1.0).contains(&self.delta) || !self.delta.is_finite() {
            return Err(ParamError::BadFraction {
                name: "delta",
                value: self.delta,
                constraint: "must be in [0,1)",
            });
        }
        if self.phys_pages > self.virt_pages {
            return Err(ParamError::OutOfRange {
                name: "phys_pages",
                value: self.phys_pages,
                constraint: "must be <= virt_pages (paging is trivial otherwise)",
            });
        }
        Ok(SystemParams {
            virt_pages: self.virt_pages,
            phys_pages: self.phys_pages,
            tlb_entries: self.tlb_entries,
            tlb_value_bits: self.tlb_value_bits,
            delta: self.delta,
            hmax: self.hmax,
            cost: self.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_succeeds() {
        let p = SystemParams::builder().build().unwrap();
        assert_eq!(p.virt_pages, 1 << 16);
        assert_eq!(p.effective_phys_pages(), p.phys_pages);
    }

    #[test]
    fn effective_pages_respects_delta() {
        let p = SystemParams::builder()
            .phys_pages(1000)
            .virt_pages(1 << 16)
            .delta(0.1)
            .build()
            .unwrap();
        assert_eq!(p.effective_phys_pages(), 900);
    }

    #[test]
    fn rejects_zero_params() {
        assert!(SystemParams::builder().virt_pages(0).build().is_err());
        assert!(SystemParams::builder().phys_pages(0).build().is_err());
        assert!(SystemParams::builder().tlb_entries(0).build().is_err());
        assert!(SystemParams::builder().tlb_value_bits(0).build().is_err());
    }

    #[test]
    fn rejects_bad_hmax() {
        assert!(SystemParams::builder().hmax(3).build().is_err());
        // hmax must divide V.
        assert!(SystemParams::builder()
            .virt_pages(100)
            .phys_pages(10)
            .hmax(8)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(SystemParams::builder().delta(1.0).build().is_err());
        assert!(SystemParams::builder().delta(-0.1).build().is_err());
        assert!(SystemParams::builder().delta(f64::NAN).build().is_err());
    }

    #[test]
    fn rejects_phys_bigger_than_virt() {
        assert!(SystemParams::builder()
            .virt_pages(16)
            .phys_pages(32)
            .build()
            .is_err());
    }

    #[test]
    fn huge_page_counts() {
        let p = SystemParams::builder()
            .virt_pages(1 << 16)
            .phys_pages(1 << 10)
            .hmax(16)
            .build()
            .unwrap();
        assert_eq!(p.virt_huge_pages(), (1 << 16) / 16);
        assert_eq!(p.hmax_geometry().pages_per_huge(), 16);
    }
}
