//! Common types for the Address-Translation Problem.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * newtyped page identifiers ([`VirtPage`], [`PhysPage`], [`VirtHugePage`]),
//! * multi-tenant vocabulary ([`Asid`], [`TaggedHugePage`], [`TenantOp`]),
//! * page-geometry arithmetic ([`HugePageGeometry`]),
//! * the system parameters of the paper's model ([`SystemParams`]):
//!   `V` virtual pages, `P` physical pages, `ℓ` TLB entries, `w` bits per TLB
//!   value, resource augmentation `δ`, and the TLB-miss cost `ε`,
//! * the **address-translation cost model** of Section 5 ([`CostModel`],
//!   [`Costs`]): each IO costs 1, each TLB miss costs `ε ∈ (0,1)`, each TLB
//!   hit costs 0, and decoding misses also cost `ε`.
//!
//! Everything here is plain data with no behaviour beyond arithmetic, so the
//! crate has no dependencies at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asid;
pub mod cost;
pub mod error;
pub mod geometry;
pub mod page;
pub mod params;
pub mod scale;

pub use asid::{Asid, TaggedHugePage, TenantOp};
pub use cost::{CostModel, Costs};
pub use error::{ParamError, Result};
pub use geometry::HugePageGeometry;
pub use page::{PhysPage, VirtHugePage, VirtPage, NULL_PHYS};
pub use params::{SystemParams, SystemParamsBuilder};
pub use scale::{pages_for_bytes, GIB, KIB, MIB, PAGE_SIZE};
