//! Size and scale helpers.
//!
//! The paper's experiments are expressed in bytes (64 GB virtual address
//! space, 16 GB cache, 4 kB base pages); the model is expressed in pages.
//! These helpers convert between the two.

/// Base page size in bytes (the paper uses 4 kB pages throughout).
pub const PAGE_SIZE: u64 = 4096;

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Number of base pages needed to hold `bytes` bytes (rounding up).
#[inline]
pub const fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Number of bytes spanned by `pages` base pages.
#[inline]
pub const fn bytes_for_pages(pages: u64) -> u64 {
    pages * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_constants() {
        // 64 GB virtual address space = 2^24 4kB pages.
        assert_eq!(pages_for_bytes(64 * GIB), 1 << 24);
        // 16 GB cache = 2^22 pages.
        assert_eq!(pages_for_bytes(16 * GIB), 1 << 22);
        // 1 GB hot region = 2^18 pages.
        assert_eq!(pages_for_bytes(GIB), 1 << 18);
    }

    #[test]
    fn rounding_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn bytes_for_pages_inverts() {
        assert_eq!(bytes_for_pages(pages_for_bytes(8 * GIB)), 8 * GIB);
    }
}
