//! Address-space identifiers for multi-tenant simulation.
//!
//! The paper's model simulates one address space; the multi-tenant
//! extension runs N lightweight tenants over a single shared physical
//! pool. Each tenant is named by an [`Asid`] (address-space identifier),
//! and translation structures key their entries by [`TaggedHugePage`] —
//! an ASID-qualified huge-page address — so a context switch needs no
//! TLB flush: entries of the outgoing tenant simply stop matching.
//!
//! Two ASID values are special by convention:
//!
//! * [`Asid::SINGLE`] (`Asid(0)`) — the implicit tenant of every
//!   single-tenant simulation. Driving a manager with only `Asid(0)`
//!   must reproduce the pre-multi-tenant behaviour bit-for-bit.
//! * [`Asid::GLOBAL`] (`Asid(u32::MAX)`) — the shared/kernel tag.
//!   TLB entries inserted under it match lookups from *every* tenant
//!   and survive `flush_asid`, mirroring the global bit in hardware
//!   TLB entries.
//!
//! Multi-tenant request streams are sequences of [`TenantOp`]s: page
//! accesses interleaved with context-switch and tenant-retirement
//! records.

use core::fmt;

use crate::page::{VirtHugePage, VirtPage};

/// An address-space identifier naming one tenant (process).
///
/// ASIDs are dense small integers assigned by the driver; `u32` bounds
/// the model at ~4 billion concurrently-named tenants ("millions of
/// users" with room to spare) while keeping [`TaggedHugePage`] at 16
/// bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(pub u32);

impl Asid {
    /// The implicit tenant of single-tenant simulations.
    ///
    /// Runs that only ever use this ASID must behave bit-for-bit like
    /// the single-tenant code path.
    pub const SINGLE: Asid = Asid(0);

    /// The shared/kernel tag: entries tagged global match every
    /// tenant's lookups and survive [`flush_asid`] storms.
    ///
    /// The driver never assigns this value to a tenant.
    ///
    /// [`flush_asid`]: TaggedHugePage#global-entries
    pub const GLOBAL: Asid = Asid(u32::MAX);

    /// Returns the raw identifier.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Whether this is the shared/kernel tag.
    #[inline]
    pub const fn is_global(self) -> bool {
        self.0 == u32::MAX
    }
}

impl From<u32> for Asid {
    #[inline]
    fn from(v: u32) -> Self {
        Asid(v)
    }
}

impl fmt::Debug for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_global() {
            write!(f, "asid(global)")
        } else {
            write!(f, "asid{}", self.0)
        }
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An ASID-qualified virtual huge-page address: the key type of
/// ASID-tagged translation structures.
///
/// # Global entries
///
/// A key whose `asid` is [`Asid::GLOBAL`] denotes a shared mapping
/// visible to all tenants; tagged TLBs probe the private key first and
/// fall back to the global key, and `flush_asid` never removes global
/// entries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaggedHugePage {
    /// The owning address space.
    pub asid: Asid,
    /// The huge-page address within that space.
    pub huge: VirtHugePage,
}

impl TaggedHugePage {
    /// Builds a key for `huge` in address space `asid`.
    #[inline]
    pub const fn new(asid: Asid, huge: VirtHugePage) -> Self {
        Self { asid, huge }
    }

    /// Builds the shared/kernel key for `huge`.
    #[inline]
    pub const fn global(huge: VirtHugePage) -> Self {
        Self {
            asid: Asid::GLOBAL,
            huge,
        }
    }
}

impl fmt::Debug for TaggedHugePage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{:?}", self.asid, self.huge)
    }
}

/// One record of a multi-tenant request stream.
///
/// Accesses are implicitly attributed to the *current* tenant — the
/// target of the most recent [`TenantOp::Switch`] (initially
/// [`Asid::SINGLE`]) — so single-tenant traces embed as pure `Access`
/// streams with zero overhead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TenantOp {
    /// The current tenant accesses a virtual page.
    Access(VirtPage),
    /// Context switch: subsequent accesses belong to this tenant.
    Switch(Asid),
    /// The tenant exits; its mappings must be torn down (and its TLB
    /// entries shot down) before the ASID can be recycled.
    Retire(Asid),
}

impl TenantOp {
    /// The page accessed, if this is an access record.
    #[inline]
    pub fn page(self) -> Option<VirtPage> {
        match self {
            TenantOp::Access(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_distinct() {
        assert_ne!(Asid::SINGLE, Asid::GLOBAL);
        assert!(Asid::GLOBAL.is_global());
        assert!(!Asid::SINGLE.is_global());
        assert_eq!(Asid::default(), Asid::SINGLE);
    }

    #[test]
    fn key_equality_requires_both_fields() {
        let a = TaggedHugePage::new(Asid(1), VirtHugePage(7));
        let b = TaggedHugePage::new(Asid(2), VirtHugePage(7));
        let c = TaggedHugePage::new(Asid(1), VirtHugePage(8));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, TaggedHugePage::new(Asid(1), VirtHugePage(7)));
    }

    #[test]
    fn global_ctor_tags_global() {
        let g = TaggedHugePage::global(VirtHugePage(3));
        assert!(g.asid.is_global());
        assert_eq!(g.huge, VirtHugePage(3));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Asid(5)), "asid5");
        assert_eq!(format!("{:?}", Asid::GLOBAL), "asid(global)");
        assert_eq!(
            format!("{:?}", TaggedHugePage::new(Asid(1), VirtHugePage(255))),
            "asid1:h0xff"
        );
    }

    #[test]
    fn tenant_op_page_accessor() {
        assert_eq!(TenantOp::Access(VirtPage(9)).page(), Some(VirtPage(9)));
        assert_eq!(TenantOp::Switch(Asid(1)).page(), None);
        assert_eq!(TenantOp::Retire(Asid(1)).page(), None);
    }
}
