//! The address-translation cost model (Section 5).
//!
//! The running time of a memory-management algorithm is evaluated as:
//!
//! * fetching a page into RAM (an **IO**) costs `1`,
//! * adding an entry to the TLB (equivalently, a **TLB miss**) costs
//!   `ε ∈ (0,1)`,
//! * a **decoding miss** — the TLB holds a covering huge page and the page is
//!   resident, but the decoding function wrongly returns `−1` — also costs `ε`
//!   (it forces a page-table walk just like a TLB miss),
//! * TLB hits, evictions, and ψ-value updates are free.
//!
//! Total cost: `C = C_TLB + C_IO + C_D` (the paper's decomposition).

/// The cost model parameter: the relative cost `ε` of a TLB miss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of a TLB miss (and of a decoding miss), relative to an IO cost
    /// of 1. The paper requires `ε ∈ (0, 1)`.
    pub epsilon: f64,
}

impl CostModel {
    /// Creates a cost model; `epsilon` must lie in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)` or not finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        Self { epsilon }
    }
}

impl Default for CostModel {
    /// `ε = 0.01`: a TLB miss (hundreds of cycles) is ~1% of a fast-NVMe IO.
    fn default() -> Self {
        Self { epsilon: 0.01 }
    }
}

/// Cumulative event counts for a run, convertible to model cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Costs {
    /// Number of page fetches from storage (each costs 1).
    pub ios: u64,
    /// Number of TLB misses (each costs ε).
    pub tlb_misses: u64,
    /// Number of decoding misses (each costs ε).
    pub decode_misses: u64,
    /// Number of requests serviced while the requested page was in the
    /// failure set `F` (informational; their 1 + ε cost is already included
    /// in `ios` / `decode_misses`).
    pub paging_failures: u64,
    /// Number of requests serviced (informational).
    pub accesses: u64,
    /// Number of TLB hits (informational; free in the model).
    pub tlb_hits: u64,
}

impl Costs {
    /// `C_IO`: total IO cost.
    #[inline]
    pub fn io_cost(&self) -> f64 {
        self.ios as f64
    }

    /// `C_TLB`: total TLB-miss cost under `model`.
    #[inline]
    pub fn tlb_cost(&self, model: CostModel) -> f64 {
        self.tlb_misses as f64 * model.epsilon
    }

    /// `C_D`: total decoding-miss cost under `model`.
    #[inline]
    pub fn decode_cost(&self, model: CostModel) -> f64 {
        self.decode_misses as f64 * model.epsilon
    }

    /// `C = C_TLB + C_IO + C_D`.
    #[inline]
    pub fn total(&self, model: CostModel) -> f64 {
        self.io_cost() + self.tlb_cost(model) + self.decode_cost(model)
    }

    /// TLB miss rate over all accesses (0 if no accesses).
    pub fn tlb_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / self.accesses as f64
        }
    }

    /// Merges another tally into this one (e.g. from a parallel shard).
    pub fn merge(&mut self, other: &Costs) {
        self.ios += other.ios;
        self.tlb_misses += other.tlb_misses;
        self.decode_misses += other.decode_misses;
        self.paging_failures += other.paging_failures;
        self.accesses += other.accesses;
        self.tlb_hits += other.tlb_hits;
    }
}

impl core::ops::Add for Costs {
    type Output = Costs;
    fn add(mut self, rhs: Costs) -> Costs {
        self.merge(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_epsilon_is_small() {
        let m = CostModel::default();
        assert!(m.epsilon > 0.0 && m.epsilon < 1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn rejects_epsilon_one() {
        CostModel::new(1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn rejects_epsilon_zero() {
        CostModel::new(0.0);
    }

    #[test]
    fn total_is_decomposition() {
        let m = CostModel::new(0.5);
        let c = Costs {
            ios: 10,
            tlb_misses: 4,
            decode_misses: 2,
            paging_failures: 0,
            accesses: 100,
            tlb_hits: 96,
        };
        assert_eq!(c.io_cost(), 10.0);
        assert_eq!(c.tlb_cost(m), 2.0);
        assert_eq!(c.decode_cost(m), 1.0);
        assert_eq!(c.total(m), 13.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Costs {
            ios: 1,
            tlb_misses: 2,
            decode_misses: 3,
            paging_failures: 4,
            accesses: 5,
            tlb_hits: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.ios, 2);
        assert_eq!(a.tlb_misses, 4);
        assert_eq!(a.decode_misses, 6);
        assert_eq!(a.paging_failures, 8);
        assert_eq!(a.accesses, 10);
        assert_eq!(a.tlb_hits, 12);
    }

    #[test]
    fn add_operator_matches_merge() {
        let a = Costs {
            ios: 1,
            accesses: 1,
            ..Default::default()
        };
        let b = Costs {
            ios: 2,
            accesses: 3,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.ios, 3);
        assert_eq!(c.accesses, 4);
    }

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(Costs::default().tlb_miss_rate(), 0.0);
    }
}
