//! Huge-page geometry: splitting the virtual address space into aligned runs.
//!
//! A huge page of size `h` (a power of two, in base pages) covers the `h`
//! virtually contiguous base pages whose ids share the same high-order bits.
//! Following Section 5, a size-`2^r` huge page is associated with an address
//! that is an integer multiple of `2^r`; the map `r(v) = v − (v mod h)` sends
//! a virtual page to the base of its enclosing huge page, and we use
//! `v / h` as the huge page *id*.

use crate::error::{ParamError, Result};
use crate::page::{VirtHugePage, VirtPage};

/// Aligned huge-page geometry over the virtual address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HugePageGeometry {
    /// Huge-page size in base pages; always a power of two, `>= 1`.
    h: u64,
    /// `log2(h)`.
    shift: u32,
}

impl HugePageGeometry {
    /// Creates a geometry with huge pages of `h` base pages.
    ///
    /// # Errors
    /// Returns [`ParamError::NotPowerOfTwo`] unless `h` is a power of two.
    pub fn new(h: u64) -> Result<Self> {
        if h == 0 || !h.is_power_of_two() {
            return Err(ParamError::NotPowerOfTwo {
                name: "h",
                value: h,
            });
        }
        Ok(Self {
            h,
            shift: h.trailing_zeros(),
        })
    }

    /// The trivial geometry `h = 1` (no huge pages).
    #[inline]
    pub const fn base() -> Self {
        Self { h: 1, shift: 0 }
    }

    /// Huge-page size in base pages.
    #[inline]
    pub const fn pages_per_huge(self) -> u64 {
        self.h
    }

    /// `log2` of the huge-page size.
    #[inline]
    pub const fn shift(self) -> u32 {
        self.shift
    }

    /// The huge page containing virtual page `v`: the paper's `r(v)` as an id.
    #[inline]
    pub const fn huge_of(self, v: VirtPage) -> VirtHugePage {
        VirtHugePage(v.0 >> self.shift)
    }

    /// The first base page of huge page `u` (the aligned base address).
    #[inline]
    pub const fn base_of(self, u: VirtHugePage) -> VirtPage {
        VirtPage(u.0 << self.shift)
    }

    /// The index of `v` within its huge page, in `[0, h)`.
    #[inline]
    pub const fn index_within(self, v: VirtPage) -> u64 {
        v.0 & (self.h - 1)
    }

    /// The `i`-th constituent base page of huge page `u`.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= h`.
    #[inline]
    pub fn constituent(self, u: VirtHugePage, i: u64) -> VirtPage {
        debug_assert!(
            i < self.h,
            "constituent index {i} out of range for h={}",
            self.h
        );
        VirtPage((u.0 << self.shift) | i)
    }

    /// Iterates over all `h` constituent base pages of `u`.
    pub fn constituents(self, u: VirtHugePage) -> impl Iterator<Item = VirtPage> {
        let base = u.0 << self.shift;
        (0..self.h).map(move |i| VirtPage(base | i))
    }

    /// Whether `v` is covered by huge page `u` (the paper's "covered by").
    #[inline]
    pub const fn covers(self, u: VirtHugePage, v: VirtPage) -> bool {
        (v.0 >> self.shift) == u.0
    }

    /// Number of huge pages needed to cover `v_pages` base pages
    /// (rounding up for a ragged final huge page).
    #[inline]
    pub const fn huge_count(self, v_pages: u64) -> u64 {
        v_pages.div_ceil(self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_powers_of_two() {
        assert!(HugePageGeometry::new(0).is_err());
        assert!(HugePageGeometry::new(3).is_err());
        assert!(HugePageGeometry::new(6).is_err());
        assert!(HugePageGeometry::new(1023).is_err());
    }

    #[test]
    fn accepts_powers_of_two() {
        for shift in 0..20 {
            let g = HugePageGeometry::new(1 << shift).unwrap();
            assert_eq!(g.pages_per_huge(), 1 << shift);
            assert_eq!(g.shift(), shift);
        }
    }

    #[test]
    fn base_geometry_is_identity() {
        let g = HugePageGeometry::base();
        assert_eq!(g.huge_of(VirtPage(12345)).id(), 12345);
        assert_eq!(g.index_within(VirtPage(12345)), 0);
    }

    #[test]
    fn huge_of_and_index_decompose() {
        let g = HugePageGeometry::new(8).unwrap();
        let v = VirtPage(8 * 5 + 3);
        assert_eq!(g.huge_of(v), VirtHugePage(5));
        assert_eq!(g.index_within(v), 3);
        assert_eq!(g.constituent(VirtHugePage(5), 3), v);
    }

    #[test]
    fn constituents_enumerate_the_run() {
        let g = HugePageGeometry::new(4).unwrap();
        let pages: Vec<u64> = g.constituents(VirtHugePage(2)).map(|p| p.id()).collect();
        assert_eq!(pages, vec![8, 9, 10, 11]);
    }

    #[test]
    fn covers_matches_huge_of() {
        let g = HugePageGeometry::new(16).unwrap();
        for raw in 0..256u64 {
            let v = VirtPage(raw);
            assert!(g.covers(g.huge_of(v), v));
            assert!(!g.covers(VirtHugePage(g.huge_of(v).id() + 1), v));
        }
    }

    #[test]
    fn huge_count_rounds_up() {
        let g = HugePageGeometry::new(8).unwrap();
        assert_eq!(g.huge_count(0), 0);
        assert_eq!(g.huge_count(1), 1);
        assert_eq!(g.huge_count(8), 1);
        assert_eq!(g.huge_count(9), 2);
    }

    #[test]
    fn base_of_is_aligned() {
        let g = HugePageGeometry::new(32).unwrap();
        assert_eq!(g.base_of(VirtHugePage(3)).id(), 96);
        assert_eq!(g.base_of(VirtHugePage(3)).id() % 32, 0);
    }
}
