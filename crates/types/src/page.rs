//! Newtyped page identifiers.
//!
//! The paper works with three address spaces:
//!
//! * **virtual page addresses** in `[V] = {0, …, V-1}` ([`VirtPage`]),
//! * **physical page addresses** in `[P] = {0, …, P-1}` ([`PhysPage`]),
//! * **virtual huge-page addresses** in `[V / hmax]` ([`VirtHugePage`]).
//!
//! We use 0-based ids throughout (the paper uses 1-based; the translation is
//! immaterial). The decoding function of eq. (4) returns `-1` for unmapped
//! pages; we model that with [`NULL_PHYS`] / `Option<PhysPage>` at API
//! boundaries.

use core::fmt;

/// A virtual page address `v ∈ [V]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtPage(pub u64);

/// A physical page address (frame number) `p ∈ [P]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysPage(pub u64);

/// A virtual huge-page address `u ∈ [V / h]` for some huge-page size `h`.
///
/// The huge-page size is *not* part of the value; calling code must track the
/// geometry (see [`crate::geometry::HugePageGeometry`]). Two `VirtHugePage`s
/// are only comparable under the same geometry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtHugePage(pub u64);

/// The "null" physical address used by the paper's decoding function
/// (eq. 4) to signal that a page is not resident: `f(v, ψ(u)) = −1`.
///
/// Public APIs in this workspace use `Option<PhysPage>` instead; this
/// sentinel exists for compact in-memory encodings.
pub const NULL_PHYS: u64 = u64::MAX;

impl VirtPage {
    /// Returns the raw id.
    #[inline]
    pub const fn id(self) -> u64 {
        self.0
    }
}

impl PhysPage {
    /// Returns the raw frame number.
    #[inline]
    pub const fn id(self) -> u64 {
        self.0
    }
}

impl VirtHugePage {
    /// Returns the raw huge-page id.
    #[inline]
    pub const fn id(self) -> u64 {
        self.0
    }
}

impl From<u64> for VirtPage {
    #[inline]
    fn from(v: u64) -> Self {
        VirtPage(v)
    }
}

impl From<u64> for PhysPage {
    #[inline]
    fn from(v: u64) -> Self {
        PhysPage(v)
    }
}

impl From<u64> for VirtHugePage {
    #[inline]
    fn from(v: u64) -> Self {
        VirtHugePage(v)
    }
}

impl fmt::Debug for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for PhysPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

impl fmt::Display for PhysPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for VirtHugePage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{:#x}", self.0)
    }
}

impl fmt::Display for VirtHugePage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        assert_eq!(VirtPage::from(42).id(), 42);
        assert_eq!(PhysPage::from(7).id(), 7);
        assert_eq!(VirtHugePage::from(3).id(), 3);
    }

    #[test]
    fn ordering_follows_ids() {
        assert!(VirtPage(1) < VirtPage(2));
        assert!(PhysPage(0) < PhysPage(u64::MAX));
    }

    #[test]
    fn debug_formats_are_distinct() {
        assert_eq!(format!("{:?}", VirtPage(255)), "v0xff");
        assert_eq!(format!("{:?}", PhysPage(255)), "p0xff");
        assert_eq!(format!("{:?}", VirtHugePage(255)), "h0xff");
    }

    #[test]
    fn null_phys_is_distinguished() {
        // NULL_PHYS must never collide with a real frame in any realistic P.
        assert_eq!(NULL_PHYS, u64::MAX);
        assert_ne!(PhysPage(0).id(), NULL_PHYS);
    }

    #[test]
    fn display_is_plain_decimal() {
        assert_eq!(VirtPage(123).to_string(), "123");
        assert_eq!(PhysPage(9).to_string(), "9");
        assert_eq!(VirtHugePage(10).to_string(), "10");
    }
}
