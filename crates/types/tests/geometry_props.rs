//! Randomized property tests for huge-page geometry laws, driven by a
//! local deterministic counter RNG (no external test deps; `atp-types`
//! stays dependency-free, so the splitmix mixer is inlined here rather
//! than imported from `atp-hash`).

use atp_types::{HugePageGeometry, VirtHugePage, VirtPage};

const CASES: u64 = 256;

/// Minimal splitmix64 counter RNG, equivalent to `atp_hash::CounterRng`.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[test]
fn decompose_recompose() {
    // Decomposition law: v == constituent(huge_of(v), index_within(v)).
    let mut rng = Rng(1);
    for _ in 0..CASES {
        let shift = rng.next_below(20) as u32;
        let v = rng.next_below(1 << 40);
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let u = g.huge_of(VirtPage(v));
        let i = g.index_within(VirtPage(v));
        assert!(i < g.pages_per_huge());
        assert_eq!(g.constituent(u, i), VirtPage(v));
        assert!(g.covers(u, VirtPage(v)));
    }
}

#[test]
fn base_alignment() {
    // base_of is the first constituent and is aligned.
    let mut rng = Rng(2);
    for _ in 0..CASES {
        let shift = rng.next_below(20) as u32;
        let u = rng.next_below(1 << 30);
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let base = g.base_of(VirtHugePage(u));
        assert_eq!(base.0 % g.pages_per_huge(), 0);
        assert_eq!(g.huge_of(base).0, u);
        assert_eq!(g.index_within(base), 0);
    }
}

#[test]
fn constituents_are_exactly_the_run() {
    // Every constituent of u maps back to u, and constituents are
    // consecutive.
    let mut rng = Rng(3);
    for _ in 0..64 {
        let shift = rng.next_below(10) as u32;
        let u = rng.next_below(1 << 20);
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let hp = VirtHugePage(u);
        let mut count = 0u64;
        for (expected, v) in (g.base_of(hp).0..).zip(g.constituents(hp)) {
            assert_eq!(v.0, expected);
            assert_eq!(g.huge_of(v), hp);
            count += 1;
        }
        assert_eq!(count, g.pages_per_huge());
    }
}

#[test]
fn huge_count_is_ceil() {
    // huge_count is the exact ceiling division.
    let mut rng = Rng(4);
    for _ in 0..CASES {
        let shift = rng.next_below(12) as u32;
        let pages = rng.next_below(1 << 30);
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let h = g.pages_per_huge();
        assert_eq!(g.huge_count(pages), pages.div_ceil(h));
    }
}
