//! Property tests for huge-page geometry laws.

use atp_types::{HugePageGeometry, VirtPage};
use proptest::prelude::*;

proptest! {
    /// Decomposition law: v == constituent(huge_of(v), index_within(v)).
    #[test]
    fn decompose_recompose(shift in 0u32..20, v in 0u64..(1 << 40)) {
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let u = g.huge_of(VirtPage(v));
        let i = g.index_within(VirtPage(v));
        prop_assert!(i < g.pages_per_huge());
        prop_assert_eq!(g.constituent(u, i), VirtPage(v));
        prop_assert!(g.covers(u, VirtPage(v)));
    }

    /// base_of is the first constituent and is aligned.
    #[test]
    fn base_alignment(shift in 0u32..20, u in 0u64..(1 << 30)) {
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let base = g.base_of(atp_types::VirtHugePage(u));
        prop_assert_eq!(base.0 % g.pages_per_huge(), 0);
        prop_assert_eq!(g.huge_of(base).0, u);
        prop_assert_eq!(g.index_within(base), 0);
    }

    /// Every constituent of u maps back to u, and constituents are
    /// consecutive.
    #[test]
    fn constituents_are_exactly_the_run(shift in 0u32..10, u in 0u64..(1 << 20)) {
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let hp = atp_types::VirtHugePage(u);
        let mut expected = g.base_of(hp).0;
        let mut count = 0u64;
        #[allow(clippy::explicit_counter_loop)] // expected/count checked as values
        for v in g.constituents(hp) {
            prop_assert_eq!(v.0, expected);
            prop_assert_eq!(g.huge_of(v), hp);
            expected += 1;
            count += 1;
        }
        prop_assert_eq!(count, g.pages_per_huge());
    }

    /// huge_count is the exact ceiling division.
    #[test]
    fn huge_count_is_ceil(shift in 0u32..12, pages in 0u64..(1 << 30)) {
        let g = HugePageGeometry::new(1 << shift).unwrap();
        let h = g.pages_per_huge();
        prop_assert_eq!(g.huge_count(pages), pages.div_ceil(h));
    }
}
