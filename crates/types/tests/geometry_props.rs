//! Property tests for huge-page geometry laws, on the `atp-check` harness
//! (a dev-dependency only: the `atp-types` library itself stays
//! dependency-free). Generated inputs shrink to minimal counterexamples
//! and every failure prints an `ATP_CHECK_SEED` replay command.

use atp_check::{check, check_config, ensure, ensure_eq, u64s, Config};
use atp_types::{HugePageGeometry, VirtHugePage, VirtPage};

#[test]
fn decompose_recompose() {
    // Decomposition law: v == constituent(huge_of(v), index_within(v)).
    let gen = (u64s(0..=19), u64s(0..=(1 << 40) - 1));
    let cfg = Config::for_property("decompose_recompose").with_cases(256);
    check_config("decompose_recompose", &gen, &cfg, |(shift, v)| {
        let g = HugePageGeometry::new(1 << *shift).expect("power of two");
        let u = g.huge_of(VirtPage(*v));
        let i = g.index_within(VirtPage(*v));
        ensure!(i < g.pages_per_huge(), "index {i} out of range");
        ensure_eq!(g.constituent(u, i), VirtPage(*v), "recompose");
        ensure!(g.covers(u, VirtPage(*v)), "covers(huge_of(v), v) is false");
        Ok(())
    });
}

#[test]
fn base_alignment() {
    // base_of is the first constituent and is aligned.
    let gen = (u64s(0..=19), u64s(0..=(1 << 30) - 1));
    let cfg = Config::for_property("base_alignment").with_cases(256);
    check_config("base_alignment", &gen, &cfg, |(shift, u)| {
        let g = HugePageGeometry::new(1 << *shift).expect("power of two");
        let base = g.base_of(VirtHugePage(*u));
        ensure_eq!(base.0 % g.pages_per_huge(), 0, "base misaligned");
        ensure_eq!(g.huge_of(base).0, *u, "base maps back to its huge page");
        ensure_eq!(g.index_within(base), 0, "base is the first constituent");
        Ok(())
    });
}

#[test]
fn constituents_are_exactly_the_run() {
    // Every constituent of u maps back to u, and constituents are
    // consecutive.
    let gen = (u64s(0..=9), u64s(0..=(1 << 20) - 1));
    check("constituents_are_exactly_the_run", &gen, |(shift, u)| {
        let g = HugePageGeometry::new(1 << *shift).expect("power of two");
        let hp = VirtHugePage(*u);
        let mut count = 0u64;
        for (expected, v) in (g.base_of(hp).0..).zip(g.constituents(hp)) {
            ensure_eq!(v.0, expected, "constituents not consecutive");
            ensure_eq!(g.huge_of(v), hp, "constituent escapes its huge page");
            count += 1;
        }
        ensure_eq!(count, g.pages_per_huge(), "constituent count");
        Ok(())
    });
}

#[test]
fn huge_count_is_ceil() {
    // huge_count is the exact ceiling division.
    let gen = (u64s(0..=11), u64s(0..=(1 << 30) - 1));
    let cfg = Config::for_property("huge_count_is_ceil").with_cases(256);
    check_config("huge_count_is_ceil", &gen, &cfg, |(shift, pages)| {
        let g = HugePageGeometry::new(1 << *shift).expect("power of two");
        let h = g.pages_per_huge();
        ensure_eq!(g.huge_count(*pages), pages.div_ceil(h), "ceiling division");
        Ok(())
    });
}
