//! An open-addressing hash page table.
//!
//! Models inverted/hashed page tables (as in POWER and in software-managed
//! designs): a flat array of (virtual, physical) pairs probed linearly from
//! the hashed home slot. The walk cost is the probe length, so it degrades
//! gracefully with load factor instead of paying four dependent accesses
//! like the radix walk. Tombstone deletion with automatic rehash keeps
//! probe lengths bounded.

use crate::{PageTable, WalkStats};
use atp_hash::mix::{mix2, reduce};
use atp_types::{PhysPage, VirtPage};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Empty,
    Tombstone,
    Full(u64, PhysPage),
}

/// Entries per 4 kB table page (16-byte slots).
const SLOTS_PER_PAGE: u64 = 256;

/// An open-addressing (linear probing) page table.
#[derive(Clone, Debug)]
pub struct HashPageTable {
    slots: Vec<Slot>,
    mask: u64,
    seed: u64,
    mapped: u64,
    /// Full + tombstone slots, to trigger rehash.
    occupied: u64,
}

impl HashPageTable {
    /// Creates a table with capacity for roughly `expected` mappings at a
    /// healthy load factor.
    pub fn new(seed: u64, expected: u64) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        Self {
            slots: vec![Slot::Empty; cap as usize],
            mask: cap - 1,
            seed,
            mapped: 0,
            occupied: 0,
        }
    }

    #[inline]
    fn home(&self, v: u64) -> u64 {
        reduce(mix2(self.seed, v), self.mask + 1)
    }

    fn maybe_rehash(&mut self) {
        let cap = self.slots.len() as u64;
        if self.occupied * 10 <= cap * 7 {
            return;
        }
        // Grow if genuinely full; otherwise same-size rehash clears tombstones.
        let new_cap = if self.mapped * 10 > cap * 5 {
            cap * 2
        } else {
            cap
        };
        let old = core::mem::replace(&mut self.slots, vec![Slot::Empty; new_cap as usize]);
        self.mask = new_cap - 1;
        self.occupied = 0;
        self.mapped = 0;
        for s in old {
            if let Slot::Full(v, p) = s {
                self.insert_raw(v, p);
            }
        }
    }

    fn insert_raw(&mut self, v: u64, p: PhysPage) {
        let mut i = self.home(v);
        loop {
            match self.slots[i as usize] {
                Slot::Empty | Slot::Tombstone => {
                    if self.slots[i as usize] == Slot::Empty {
                        self.occupied += 1;
                    }
                    self.slots[i as usize] = Slot::Full(v, p);
                    self.mapped += 1;
                    return;
                }
                Slot::Full(existing, _) if existing == v => {
                    self.slots[i as usize] = Slot::Full(v, p);
                    return;
                }
                Slot::Full(..) => i = (i + 1) & self.mask,
            }
        }
    }
}

impl PageTable for HashPageTable {
    fn map(&mut self, v: VirtPage, p: PhysPage) -> WalkStats {
        self.maybe_rehash();
        let mut touches = 0;
        let mut i = self.home(v.0);
        // A tombstone may be reused only after confirming the key is not
        // further along the probe chain (otherwise we'd duplicate it).
        let mut first_tombstone: Option<u64> = None;
        loop {
            touches += 1;
            match self.slots[i as usize] {
                Slot::Empty => {
                    let target = first_tombstone.unwrap_or(i);
                    if target == i {
                        self.occupied += 1;
                    }
                    self.slots[target as usize] = Slot::Full(v.0, p);
                    self.mapped += 1;
                    return WalkStats { touches };
                }
                Slot::Tombstone => {
                    first_tombstone.get_or_insert(i);
                    i = (i + 1) & self.mask;
                }
                Slot::Full(existing, _) if existing == v.0 => {
                    self.slots[i as usize] = Slot::Full(v.0, p);
                    return WalkStats { touches };
                }
                Slot::Full(..) => i = (i + 1) & self.mask,
            }
        }
    }

    fn unmap(&mut self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        let mut touches = 0;
        let mut i = self.home(v.0);
        loop {
            touches += 1;
            match self.slots[i as usize] {
                Slot::Empty => return (None, WalkStats { touches }),
                Slot::Full(existing, p) if existing == v.0 => {
                    self.slots[i as usize] = Slot::Tombstone;
                    self.mapped -= 1;
                    return (Some(p), WalkStats { touches });
                }
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    fn translate(&self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        let mut touches = 0;
        let mut i = self.home(v.0);
        loop {
            touches += 1;
            match self.slots[i as usize] {
                Slot::Empty => return (None, WalkStats { touches }),
                Slot::Full(existing, p) if existing == v.0 => {
                    return (Some(p), WalkStats { touches })
                }
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    fn mapped(&self) -> u64 {
        self.mapped
    }

    fn table_pages(&self) -> u64 {
        (self.slots.len() as u64).div_ceil(SLOTS_PER_PAGE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut pt = HashPageTable::new(1, 100);
        pt.map(VirtPage(10), PhysPage(20));
        assert_eq!(pt.translate(VirtPage(10)).0, Some(PhysPage(20)));
        assert_eq!(pt.unmap(VirtPage(10)).0, Some(PhysPage(20)));
        assert_eq!(pt.translate(VirtPage(10)).0, None);
        assert_eq!(pt.mapped(), 0);
    }

    #[test]
    fn overwrite_does_not_duplicate() {
        let mut pt = HashPageTable::new(1, 10);
        pt.map(VirtPage(1), PhysPage(1));
        pt.map(VirtPage(1), PhysPage(2));
        assert_eq!(pt.mapped(), 1);
        assert_eq!(pt.translate(VirtPage(1)).0, Some(PhysPage(2)));
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut pt = HashPageTable::new(2, 8);
        for v in 0..1000u64 {
            pt.map(VirtPage(v), PhysPage(v + 5));
        }
        assert_eq!(pt.mapped(), 1000);
        for v in 0..1000u64 {
            assert_eq!(pt.translate(VirtPage(v)).0, Some(PhysPage(v + 5)), "v={v}");
        }
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut pt = HashPageTable::new(3, 64);
        for v in 0..100u64 {
            pt.map(VirtPage(v), PhysPage(v));
        }
        for v in (0..100u64).step_by(2) {
            pt.unmap(VirtPage(v));
        }
        for v in (1..100u64).step_by(2) {
            assert_eq!(pt.translate(VirtPage(v)).0, Some(PhysPage(v)), "v={v}");
        }
    }

    #[test]
    fn probe_length_stays_bounded_under_churn() {
        let mut pt = HashPageTable::new(4, 256);
        // Heavy map/unmap churn would fill the table with tombstones
        // without the rehash.
        for round in 0..50u64 {
            for v in 0..256u64 {
                pt.map(VirtPage(round * 1000 + v), PhysPage(v));
            }
            for v in 0..256u64 {
                pt.unmap(VirtPage(round * 1000 + v));
            }
        }
        let (_, stats) = pt.translate(VirtPage(999_999));
        assert!(
            stats.touches < 64,
            "probe chain too long: {}",
            stats.touches
        );
    }

    #[test]
    fn average_probe_length_is_small_at_half_load() {
        let mut pt = HashPageTable::new(5, 4096);
        for v in 0..4096u64 {
            pt.map(VirtPage(v * 7 + 1), PhysPage(v));
        }
        let total: u64 = (0..4096u64)
            .map(|v| pt.translate(VirtPage(v * 7 + 1)).1.touches)
            .sum();
        let avg = total as f64 / 4096.0;
        assert!(avg < 3.0, "average probes {avg}");
    }

    #[test]
    fn table_pages_reflect_capacity() {
        let pt = HashPageTable::new(6, 1000);
        // capacity = 2048 slots -> 8 table pages.
        assert_eq!(pt.table_pages(), 8);
    }

    #[test]
    fn matches_reference_map_under_random_ops() {
        use atp_hash::{CounterRng, FxHashMap};
        let mut pt = HashPageTable::new(7, 32);
        let mut reference: FxHashMap<u64, u64> = FxHashMap::default();
        let mut rng = CounterRng::new(77, 0);
        for _ in 0..20_000 {
            let v = rng.next_below(500);
            match rng.next_below(3) {
                0 => {
                    let p = rng.next_below(1 << 20);
                    pt.map(VirtPage(v), PhysPage(p));
                    reference.insert(v, p);
                }
                1 => {
                    let got = pt.unmap(VirtPage(v)).0.map(|p| p.0);
                    assert_eq!(got, reference.remove(&v));
                }
                _ => {
                    let got = pt.translate(VirtPage(v)).0.map(|p| p.0);
                    assert_eq!(got, reference.get(&v).copied());
                }
            }
            assert_eq!(pt.mapped() as usize, reference.len());
        }
    }
}
