//! Nested (virtualized) address translation.
//!
//! Section 1: "in cloud environments … each memory reference undergoes two
//! translations — once in the guest and once in the host — which actually
//! squares the cost of a TLB miss in the worst case." This module models
//! two-dimensional page walks: the guest's page-table pages live in *guest
//! physical* memory, so every node the guest walk touches must itself be
//! translated by the host table.
//!
//! With `d`-level radix tables on both sides, a full 2D walk touches up to
//! `(d+1)² − 1 = 24` memory locations (the textbook x86 EPT figure for
//! d = 4) versus `d = 4` for a native walk — the quadratic blow-up the
//! paper cites, measured structurally here.

use crate::{PageTable, WalkStats};
use atp_types::{PhysPage, VirtPage};

/// A two-level (guest-over-host) translation system.
///
/// `G` translates guest-virtual → guest-physical; `H` translates
/// guest-physical → host-physical. Guest table nodes are addressed in
/// guest-physical space, so each guest walk step costs one host walk plus
/// the node touch itself.
#[derive(Debug)]
pub struct NestedTranslation<G, H> {
    guest: G,
    host: H,
}

impl<G: PageTable, H: PageTable> NestedTranslation<G, H> {
    /// Wraps a guest and a host table.
    pub fn new(guest: G, host: H) -> Self {
        Self { guest, host }
    }

    /// Guest table (gVA → gPA).
    pub fn guest(&self) -> &G {
        &self.guest
    }

    /// Host table (gPA → hPA).
    pub fn host(&self) -> &H {
        &self.host
    }

    /// Mutable guest table, for mapping.
    pub fn guest_mut(&mut self) -> &mut G {
        &mut self.guest
    }

    /// Mutable host table, for mapping.
    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    /// Performs the full two-dimensional walk for guest-virtual page `v`:
    /// returns the host-physical page and the total touches, where each
    /// guest-walk touch is preceded by a host walk of the node's
    /// guest-physical address, and the final guest-physical result is
    /// itself host-translated.
    ///
    /// Returns `None` (with the touches spent) if either dimension lacks a
    /// mapping.
    pub fn translate(&self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        // The guest walk reports how many nodes it touched; each node
        // access in a hardware 2D walk requires a host translation of that
        // node's gPA. Our PageTable trait doesn't expose per-node
        // addresses, so we charge the *structural* 2D cost: every guest
        // touch costs (1 + host walk of a representative node address),
        // using the host table's walk depth for resident mappings.
        let (gpa, guest_stats) = self.guest.translate(v);
        let mut touches = 0;
        for _ in 0..guest_stats.touches {
            // Host walk for the table node itself. Representative cost: a
            // resident host walk (nodes must be resident for the guest
            // table to function); we use the host's own reported depth by
            // translating the guest-physical root-adjacent address 0.
            let (_, h) = self.host.translate(VirtPage(0));
            touches += 1 + h.touches;
        }
        match gpa {
            None => (None, WalkStats { touches }),
            Some(gp) => {
                // Finally translate the data page's gPA.
                let (hpa, h) = self.host.translate(VirtPage(gp.0));
                touches += h.touches;
                (hpa, WalkStats { touches })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::RadixPageTable;

    fn nested_identity(span: u64) -> NestedTranslation<RadixPageTable, RadixPageTable> {
        let mut guest = RadixPageTable::new();
        let mut host = RadixPageTable::new();
        for v in 0..span {
            guest.map(VirtPage(v), PhysPage(v + 1000));
            host.map(VirtPage(v + 1000), PhysPage(v + 2000));
        }
        // Host must also map the low gPAs used for node-representative
        // translations.
        host.map(VirtPage(0), PhysPage(0));
        NestedTranslation::new(guest, host)
    }

    #[test]
    fn resolves_through_both_dimensions() {
        let n = nested_identity(64);
        let (hpa, _) = n.translate(VirtPage(7));
        assert_eq!(hpa, Some(PhysPage(2007)));
    }

    #[test]
    fn two_dimensional_walk_costs_square() {
        let n = nested_identity(64);
        let (_, native) = n.guest().translate(VirtPage(7));
        let (_, nested) = n.translate(VirtPage(7));
        // Native: 4 touches. Nested: 4 guest nodes × (1 + 4 host) + 4 for
        // the final data translation = 24 — the (d+1)²−1 figure.
        assert_eq!(native.touches, 4);
        assert_eq!(nested.touches, 24);
    }

    #[test]
    fn unmapped_guest_fails_cheaply() {
        let n = nested_identity(8);
        let (hpa, stats) = n.translate(VirtPage(9999));
        assert_eq!(hpa, None);
        assert!(stats.touches < 24, "short-circuit on guest miss");
    }

    #[test]
    fn unmapped_host_fails() {
        let mut guest = RadixPageTable::new();
        guest.map(VirtPage(1), PhysPage(555));
        let mut host = RadixPageTable::new();
        host.map(VirtPage(0), PhysPage(0));
        let n = NestedTranslation::new(guest, host);
        let (hpa, _) = n.translate(VirtPage(1));
        assert_eq!(hpa, None, "gPA 555 unmapped in host");
    }

    #[test]
    fn host_huge_leaves_shorten_nested_walks() {
        // 1 GB-equivalent host leaves cut each per-node host walk from 4 to
        // 2, shrinking the 2D walk from 24 to 4×(1+2)+2 = 14 — the EPT
        // huge-page optimization hypervisors actually use.
        let mut guest = RadixPageTable::new();
        for v in 0..64u64 {
            guest.map(VirtPage(v), PhysPage(v + 1000));
        }
        let mut host = RadixPageTable::new();
        host.map_huge(VirtPage(0), 2, PhysPage(0)); // covers gPA 0..2^18
        let n = NestedTranslation::new(guest, host);
        let (hpa, stats) = n.translate(VirtPage(7));
        assert_eq!(hpa, Some(PhysPage(1007)));
        assert_eq!(stats.touches, 14);
    }
}
