//! Page-table substrates with walk-cost accounting.
//!
//! The paper's model calls the in-RAM dictionary of address translations the
//! *page table*; a TLB miss costs `ε` precisely because resolving it walks
//! this structure ("hundreds or even thousands of CPU cycles" — Section 1).
//! To let experiments ground `ε` in structural terms, this crate provides two
//! page-table organizations that count the memory touches of every walk:
//!
//! * [`RadixPageTable`] — the x86-64 4-level radix tree (9 bits per level,
//!   512-entry nodes), with huge leaf entries at 2 MB- and 1 GB-equivalent
//!   boundaries. A full walk touches 4 table pages; huge leaves shorten it.
//! * [`HashPageTable`] — an open-addressing inverted-style table (linear
//!   probing, tombstone deletion, automatic rehash), where a walk costs the
//!   probe length.
//!
//! Both implement [`PageTable`]; the `A-ptw` ablation bench compares their
//! walk-touch distributions under the paper's workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash_table;
pub mod nested;
pub mod pwc;
pub mod radix;
pub mod tenant;

pub use hash_table::HashPageTable;
pub use nested::NestedTranslation;
pub use pwc::CachedWalker;
pub use radix::RadixPageTable;
pub use tenant::TenantTables;

use atp_types::{PhysPage, VirtPage};

/// Statistics for one page-table operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Number of table memory locations touched (page-table pages for the
    /// radix table, probe slots for the hash table).
    pub touches: u64,
}

/// A page table: a dictionary from virtual to physical page addresses that
/// accounts for the memory touches of every operation.
pub trait PageTable {
    /// Maps `v → p`, returning walk stats. Overwrites any existing mapping.
    fn map(&mut self, v: VirtPage, p: PhysPage) -> WalkStats;

    /// Removes the mapping for `v`, returning the physical page if mapped.
    fn unmap(&mut self, v: VirtPage) -> (Option<PhysPage>, WalkStats);

    /// Translates `v`, returning the physical page if mapped.
    fn translate(&self, v: VirtPage) -> (Option<PhysPage>, WalkStats);

    /// Number of mapped base pages.
    fn mapped(&self) -> u64;

    /// Structural memory overhead, in 4 kB table pages.
    fn table_pages(&self) -> u64;
}
