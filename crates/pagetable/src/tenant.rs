//! Per-tenant page tables over a shared frame budget.
//!
//! Each tenant owns a private [`PageTable`] (created on demand by a
//! factory), but all tables draw structural pages from one shared
//! budget — the multi-tenant analogue of the kernel's page-table frame
//! pool. [`TenantTables`] accounts walk touches and table overhead
//! across tenants so experiments can measure how table sprawl scales
//! with tenant count.

use crate::{PageTable, WalkStats};
use atp_hash::FxHashMap;
use atp_types::{Asid, PhysPage, VirtPage};

/// A collection of per-tenant page tables behind one shared-frame
/// interface.
pub struct TenantTables<T, F>
where
    T: PageTable,
    F: FnMut(Asid) -> T,
{
    tables: FxHashMap<u32, T>,
    make: F,
    /// Cumulative walk touches across all tenants.
    touches: u64,
}

impl<T, F> std::fmt::Debug for TenantTables<T, F>
where
    T: PageTable,
    F: FnMut(Asid) -> T,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantTables")
            .field("tenants", &self.tables.len())
            .field("touches", &self.touches)
            .finish_non_exhaustive()
    }
}

impl<T, F> TenantTables<T, F>
where
    T: PageTable,
    F: FnMut(Asid) -> T,
{
    /// Creates the collection; `make` builds a fresh table the first
    /// time an ASID is seen (seed it from the ASID for determinism).
    pub fn new(make: F) -> Self {
        Self {
            tables: FxHashMap::default(),
            make,
            touches: 0,
        }
    }

    /// The table of `asid`, created on first use.
    pub fn table(&mut self, asid: Asid) -> &mut T {
        self.tables
            .entry(asid.0)
            .or_insert_with(|| (self.make)(asid))
    }

    /// Maps `v → p` in tenant `asid`'s table.
    pub fn map(&mut self, asid: Asid, v: VirtPage, p: PhysPage) -> WalkStats {
        let s = self.table(asid).map(v, p);
        self.touches += s.touches;
        s
    }

    /// Removes tenant `asid`'s mapping for `v`.
    pub fn unmap(&mut self, asid: Asid, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        let (p, s) = self.table(asid).unmap(v);
        self.touches += s.touches;
        (p, s)
    }

    /// Translates `v` in tenant `asid`'s address space. Unknown tenants
    /// translate to nothing at zero cost (their table does not exist yet).
    pub fn translate(&mut self, asid: Asid, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        match self.tables.get(&asid.0) {
            Some(t) => {
                let (p, s) = t.translate(v);
                self.touches += s.touches;
                (p, s)
            }
            None => (None, WalkStats::default()),
        }
    }

    /// Drops tenant `asid`'s whole table (retirement), returning
    /// `(mapped pages, table pages)` it was holding.
    pub fn retire(&mut self, asid: Asid) -> (u64, u64) {
        match self.tables.remove(&asid.0) {
            Some(t) => (t.mapped(), t.table_pages()),
            None => (0, 0),
        }
    }

    /// Number of tenants with a table.
    pub fn tenants(&self) -> usize {
        self.tables.len()
    }

    /// Total mapped base pages across all tenants.
    pub fn mapped(&self) -> u64 {
        self.tables.values().map(PageTable::mapped).sum()
    }

    /// Total structural overhead across all tenants, in 4 kB table
    /// pages — the shared frame budget all tables draw from.
    pub fn table_pages(&self) -> u64 {
        self.tables.values().map(PageTable::table_pages).sum()
    }

    /// Cumulative walk touches across all tenants.
    pub fn total_touches(&self) -> u64 {
        self.touches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashPageTable;

    fn tables() -> TenantTables<HashPageTable, impl FnMut(Asid) -> HashPageTable> {
        TenantTables::new(|asid| HashPageTable::new(0x5EED ^ asid.0 as u64, 64))
    }

    #[test]
    fn tenants_are_isolated() {
        let mut tt = tables();
        tt.map(Asid(1), VirtPage(5), PhysPage(50));
        tt.map(Asid(2), VirtPage(5), PhysPage(70));
        assert_eq!(tt.translate(Asid(1), VirtPage(5)).0, Some(PhysPage(50)));
        assert_eq!(tt.translate(Asid(2), VirtPage(5)).0, Some(PhysPage(70)));
        assert_eq!(tt.translate(Asid(3), VirtPage(5)).0, None);
        assert_eq!(tt.tenants(), 2);
    }

    #[test]
    fn unknown_tenant_translates_free() {
        let mut tt = tables();
        let (p, s) = tt.translate(Asid(9), VirtPage(0));
        assert_eq!(p, None);
        assert_eq!(s.touches, 0);
        assert_eq!(tt.tenants(), 0, "translate must not instantiate tables");
    }

    #[test]
    fn retire_drops_only_that_tenant() {
        let mut tt = tables();
        for v in 0..10u64 {
            tt.map(Asid(1), VirtPage(v), PhysPage(v));
        }
        tt.map(Asid(2), VirtPage(0), PhysPage(9));
        let (mapped, table_pages) = tt.retire(Asid(1));
        assert_eq!(mapped, 10);
        assert!(table_pages > 0);
        assert_eq!(tt.retire(Asid(1)), (0, 0));
        assert_eq!(tt.mapped(), 1);
        assert_eq!(tt.translate(Asid(1), VirtPage(0)).0, None);
    }

    #[test]
    fn shared_budget_sums_tenants() {
        let mut tt = tables();
        tt.map(Asid(1), VirtPage(0), PhysPage(0));
        tt.map(Asid(2), VirtPage(1), PhysPage(1));
        assert_eq!(tt.mapped(), 2);
        assert!(tt.table_pages() >= 2, "each tenant's table costs frames");
        assert!(tt.total_touches() > 0);
    }

    #[test]
    fn unmap_accounts_touches() {
        let mut tt = tables();
        tt.map(Asid(1), VirtPage(3), PhysPage(4));
        let before = tt.total_touches();
        let (p, _) = tt.unmap(Asid(1), VirtPage(3));
        assert_eq!(p, Some(PhysPage(4)));
        assert!(tt.total_touches() > before);
    }
}
