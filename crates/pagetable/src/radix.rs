//! The x86-64-style 4-level radix page table.
//!
//! Virtual page ids are split into four 9-bit indices (supporting a 36-bit
//! page-id space = 48-bit byte addresses at 4 kB pages). Each node is a
//! 512-entry table occupying one 4 kB page; a translation walk touches one
//! node per level. Huge leaf entries may be installed at the L2 boundary
//! (2^9 pages ≈ 2 MB) or L3 boundary (2^18 pages ≈ 1 GB), shortening walks —
//! exactly the hardware mechanism that motivates huge pages in the paper.

use crate::{PageTable, WalkStats};
use atp_types::{PhysPage, VirtPage};

const BITS_PER_LEVEL: u32 = 9;
const FANOUT: usize = 1 << BITS_PER_LEVEL;
const LEVELS: u32 = 4;

/// Maximum page id representable: 4 levels × 9 bits.
pub const MAX_PAGE_ID: u64 = (1 << (BITS_PER_LEVEL * LEVELS)) - 1;

#[derive(Clone, Debug)]
enum Entry {
    Empty,
    /// Interior pointer to a child node.
    Node(Box<Node>),
    /// Leaf translation. At the bottom level this maps one base page; at an
    /// interior level it is a huge leaf mapping a contiguous physical run
    /// starting at the stored frame.
    Leaf(PhysPage),
}

#[derive(Clone, Debug)]
struct Node {
    entries: Vec<Entry>,
    /// Number of non-empty entries, for reclamation.
    used: u32,
}

impl Node {
    fn new() -> Self {
        Self {
            entries: (0..FANOUT).map(|_| Entry::Empty).collect(),
            used: 0,
        }
    }
}

/// A 4-level radix page table with walk-touch accounting.
#[derive(Clone, Debug)]
pub struct RadixPageTable {
    root: Box<Node>,
    mapped: u64,
    nodes: u64,
}

impl RadixPageTable {
    /// Creates an empty table (root node preallocated, as on real hardware).
    pub fn new() -> Self {
        Self {
            root: Box::new(Node::new()),
            mapped: 0,
            nodes: 1,
        }
    }

    #[inline]
    fn index(v: u64, level: u32) -> usize {
        // level 0 = root. Root consumes the top 9 bits.
        ((v >> (BITS_PER_LEVEL * (LEVELS - 1 - level))) & (FANOUT as u64 - 1)) as usize
    }

    /// Installs a huge leaf covering `2^(9*k)` base pages, `k ∈ {1, 2}`,
    /// mapping the aligned virtual run starting at `base` to the contiguous
    /// physical run starting at `frame`.
    ///
    /// # Panics
    /// Panics if `base` is not aligned to the huge size, if `k` is not 1 or
    /// 2, or if the covered range already contains mappings.
    pub fn map_huge(&mut self, base: VirtPage, k: u32, frame: PhysPage) -> WalkStats {
        assert!(k == 1 || k == 2, "huge leaves only at L2/L3 boundaries");
        let span = 1u64 << (BITS_PER_LEVEL * k);
        assert_eq!(base.0 % span, 0, "huge mapping base must be aligned");
        assert!(base.0 <= MAX_PAGE_ID, "page id out of range");

        let leaf_level = LEVELS - 1 - k;
        let mut touches = 1;
        let mut node = &mut self.root;
        for level in 0..leaf_level {
            let idx = Self::index(base.0, level);
            let entry = &mut node.entries[idx];
            if matches!(entry, Entry::Empty) {
                *entry = Entry::Node(Box::new(Node::new()));
                node.used += 1;
                self.nodes += 1;
            }
            match entry {
                Entry::Node(child) => {
                    node = child;
                    touches += 1;
                }
                Entry::Leaf(_) => panic!("huge mapping overlaps an existing huge leaf"),
                Entry::Empty => unreachable!(),
            }
        }
        let idx = Self::index(base.0, leaf_level);
        match &node.entries[idx] {
            Entry::Empty => {
                node.entries[idx] = Entry::Leaf(frame);
                node.used += 1;
                self.mapped += span;
            }
            _ => panic!("huge mapping overlaps existing mappings"),
        }
        WalkStats { touches }
    }
}

impl Default for RadixPageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable for RadixPageTable {
    fn map(&mut self, v: VirtPage, p: PhysPage) -> WalkStats {
        assert!(v.0 <= MAX_PAGE_ID, "page id out of range");
        let mut touches = 1;
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = Self::index(v.0, level);
            let entry = &mut node.entries[idx];
            if matches!(entry, Entry::Empty) {
                *entry = Entry::Node(Box::new(Node::new()));
                node.used += 1;
                self.nodes += 1;
            }
            match entry {
                Entry::Node(child) => {
                    node = child;
                    touches += 1;
                }
                Entry::Leaf(_) => panic!("mapping under an existing huge leaf"),
                Entry::Empty => unreachable!(),
            }
        }
        let idx = Self::index(v.0, LEVELS - 1);
        match &mut node.entries[idx] {
            e @ Entry::Empty => {
                *e = Entry::Leaf(p);
                node.used += 1;
                self.mapped += 1;
            }
            Entry::Leaf(frame) => *frame = p,
            Entry::Node(_) => unreachable!("interior node at leaf level"),
        }
        WalkStats { touches }
    }

    fn unmap(&mut self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        // Walk down, recording the path; reclaim emptied nodes on the way up.
        // (Recursion keeps borrowck happy; depth is bounded by LEVELS.)
        fn go(
            node: &mut Node,
            v: u64,
            level: u32,
            mapped: &mut u64,
            nodes: &mut u64,
            touches: &mut u64,
        ) -> Option<PhysPage> {
            *touches += 1;
            let idx = RadixPageTable::index(v, level);
            match &mut node.entries[idx] {
                Entry::Empty => None,
                Entry::Leaf(frame) => {
                    // Only base-page leaves are unmappable one page at a time;
                    // a huge leaf above the bottom level spans many pages.
                    if level == LEVELS - 1 {
                        let f = *frame;
                        node.entries[idx] = Entry::Empty;
                        node.used -= 1;
                        *mapped -= 1;
                        Some(f)
                    } else {
                        let span = 1u64 << (BITS_PER_LEVEL * (LEVELS - 1 - level));
                        let f = *frame;
                        node.entries[idx] = Entry::Empty;
                        node.used -= 1;
                        *mapped -= span;
                        Some(f)
                    }
                }
                Entry::Node(child) => {
                    let out = go(child, v, level + 1, mapped, nodes, touches);
                    if child.used == 0 {
                        node.entries[idx] = Entry::Empty;
                        node.used -= 1;
                        *nodes -= 1;
                    }
                    out
                }
            }
        }

        let mut touches = 0;
        let out = go(
            &mut self.root,
            v.0,
            0,
            &mut self.mapped,
            &mut self.nodes,
            &mut touches,
        );
        (out, WalkStats { touches })
    }

    fn translate(&self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        let mut touches = 0;
        let mut node = &self.root;
        #[allow(clippy::explicit_counter_loop)] // touches is costing, not indexing
        for level in 0..LEVELS {
            touches += 1;
            let idx = Self::index(v.0, level);
            match &node.entries[idx] {
                Entry::Empty => return (None, WalkStats { touches }),
                Entry::Leaf(frame) => {
                    // Huge leaf: offset within the covered run.
                    let covered_bits = BITS_PER_LEVEL * (LEVELS - 1 - level);
                    let offset = v.0 & ((1u64 << covered_bits) - 1);
                    return (Some(PhysPage(frame.0 + offset)), WalkStats { touches });
                }
                Entry::Node(child) => node = child,
            }
        }
        unreachable!("bottom level always resolves to Leaf or Empty");
    }

    fn mapped(&self) -> u64 {
        self.mapped
    }

    fn table_pages(&self) -> u64 {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap_roundtrip() {
        let mut pt = RadixPageTable::new();
        pt.map(VirtPage(0x12345), PhysPage(7));
        assert_eq!(pt.translate(VirtPage(0x12345)).0, Some(PhysPage(7)));
        assert_eq!(pt.mapped(), 1);
        let (old, _) = pt.unmap(VirtPage(0x12345));
        assert_eq!(old, Some(PhysPage(7)));
        assert_eq!(pt.translate(VirtPage(0x12345)).0, None);
        assert_eq!(pt.mapped(), 0);
    }

    #[test]
    fn full_walk_touches_four_levels() {
        let mut pt = RadixPageTable::new();
        pt.map(VirtPage(42), PhysPage(1));
        let (hit, stats) = pt.translate(VirtPage(42));
        assert!(hit.is_some());
        assert_eq!(stats.touches, 4);
    }

    #[test]
    fn miss_can_short_circuit() {
        let pt = RadixPageTable::new();
        let (hit, stats) = pt.translate(VirtPage(42));
        assert!(hit.is_none());
        assert_eq!(stats.touches, 1, "empty root entry ends the walk");
    }

    #[test]
    fn remap_overwrites() {
        let mut pt = RadixPageTable::new();
        pt.map(VirtPage(5), PhysPage(1));
        pt.map(VirtPage(5), PhysPage(2));
        assert_eq!(pt.translate(VirtPage(5)).0, Some(PhysPage(2)));
        assert_eq!(pt.mapped(), 1);
    }

    #[test]
    fn huge_leaf_shortens_walk_and_offsets() {
        let mut pt = RadixPageTable::new();
        // 2MB-equivalent huge leaf at L2 boundary: covers 512 pages.
        pt.map_huge(VirtPage(512 * 3), 1, PhysPage(10_000));
        let (hit, stats) = pt.translate(VirtPage(512 * 3 + 17));
        assert_eq!(hit, Some(PhysPage(10_017)));
        assert_eq!(stats.touches, 3, "huge leaf resolves one level early");
        assert_eq!(pt.mapped(), 512);
    }

    #[test]
    fn gigantic_leaf_two_levels_early() {
        let mut pt = RadixPageTable::new();
        pt.map_huge(VirtPage(0), 2, PhysPage(0));
        let (hit, stats) = pt.translate(VirtPage(1234));
        assert_eq!(hit, Some(PhysPage(1234)));
        assert_eq!(stats.touches, 2);
        assert_eq!(pt.mapped(), 1 << 18);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn huge_mapping_must_align() {
        let mut pt = RadixPageTable::new();
        pt.map_huge(VirtPage(100), 1, PhysPage(0));
    }

    #[test]
    fn node_reclamation_on_unmap() {
        let mut pt = RadixPageTable::new();
        let before = pt.table_pages();
        pt.map(VirtPage(1), PhysPage(1));
        assert!(pt.table_pages() > before);
        pt.unmap(VirtPage(1));
        assert_eq!(pt.table_pages(), before, "interior nodes reclaimed");
    }

    #[test]
    fn table_pages_grow_with_spread_mappings() {
        let mut pt = RadixPageTable::new();
        // Mappings far apart force distinct subtrees.
        for i in 0..8u64 {
            pt.map(VirtPage(i << 27), PhysPage(i));
        }
        // Root + 8 × (three interior levels) = 1 + 24 nodes.
        assert_eq!(pt.table_pages(), 25);
    }

    #[test]
    fn dense_mappings_share_nodes() {
        let mut pt = RadixPageTable::new();
        for i in 0..512u64 {
            pt.map(VirtPage(i), PhysPage(i));
        }
        // All 512 leaves share one path: root + 3 nodes.
        assert_eq!(pt.table_pages(), 4);
        assert_eq!(pt.mapped(), 512);
    }

    #[test]
    fn unmap_absent_is_none() {
        let mut pt = RadixPageTable::new();
        let (old, _) = pt.unmap(VirtPage(9));
        assert_eq!(old, None);
    }
}
