//! Paging-structure caches (PWC / MMU caches).
//!
//! Real MMUs cache *interior* page-table nodes (Intel's paging-structure
//! caches, AMD's page-walk cache) so that a TLB miss rarely pays all 4
//! dependent memory accesses: with the L4–L2 path cached, a walk touches
//! only the leaf level. This module wraps any [`PageTable`] with per-level
//! node caches and reports the *effective* walk touches — the number that
//! should really calibrate ε (see `atp_sim::epsilon`).
//!
//! Model: the walk for page `v` needs interior nodes identified by the
//! high-order radix prefixes of `v`; a prefix hit skips that level's memory
//! touch. Caches are per-level LRU, like hardware's split PML4/PDPTE/PDE
//! caches.

use crate::{PageTable, WalkStats};
use atp_replacement::{CacheSim, Lru};
use atp_types::{PhysPage, VirtPage};

const BITS_PER_LEVEL: u32 = 9;
const LEVELS: u32 = 4;

/// A page table wrapped with per-level walk caches.
#[derive(Debug)]
pub struct CachedWalker<T> {
    table: T,
    /// One cache per interior level (levels 0..=2): keyed by the virtual
    /// prefix that identifies the node.
    caches: Vec<CacheSim<u64, Lru>>,
    hits: u64,
    lookups: u64,
}

impl<T: PageTable> CachedWalker<T> {
    /// Wraps `table` with interior caches of `entries` nodes per level
    /// (hardware is small: 2–32 entries per level).
    pub fn new(table: T, entries: usize) -> Self {
        Self {
            table,
            caches: (0..(LEVELS - 1))
                .map(|_| CacheSim::new(entries, Lru::new(entries)))
                .collect(),
            hits: 0,
            lookups: 0,
        }
    }

    /// The wrapped table.
    pub fn table(&self) -> &T {
        &self.table
    }

    /// Mutable access (mapping); mutations do not invalidate walk caches —
    /// call [`CachedWalker::flush`] after unmapping, as an OS would flush
    /// alongside TLB shootdowns.
    pub fn table_mut(&mut self) -> &mut T {
        &mut self.table
    }

    /// Flushes all walk caches.
    pub fn flush(&mut self) {
        let entries = self.caches[0].capacity();
        for c in self.caches.iter_mut() {
            *c = CacheSim::new(entries, Lru::new(entries));
        }
    }

    /// Interior-cache hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Translates `v`, charging only the levels the walk caches miss.
    ///
    /// The underlying table's full walk cost is an upper bound; each cached
    /// interior level removes one touch (the leaf access always pays).
    pub fn translate(&mut self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        let (result, full) = self.table.translate(v);
        // Determine the deepest cached interior level; the walk can start
        // below it. Check levels from deepest (2) to shallowest (0).
        let mut skipped = 0u64;
        let mut deepest_hit: Option<u32> = None;
        for level in (0..LEVELS - 1).rev() {
            let prefix_bits = BITS_PER_LEVEL * (LEVELS - 1 - level);
            let key = (v.0 >> prefix_bits) | ((level as u64) << 58);
            self.lookups += 1;
            if self.caches[level as usize].access(key).is_hit() {
                self.hits += 1;
                deepest_hit = Some(level);
                break;
            }
        }
        if let Some(level) = deepest_hit {
            // Levels 0..=level are skipped.
            skipped = level as u64 + 1;
        }
        let touches = full.touches.saturating_sub(skipped).max(1);
        (result, WalkStats { touches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::RadixPageTable;

    fn mapped_walker(entries: usize) -> CachedWalker<RadixPageTable> {
        let mut t = RadixPageTable::new();
        for v in 0..2048u64 {
            t.map(VirtPage(v), PhysPage(v));
        }
        CachedWalker::new(t, entries)
    }

    #[test]
    fn first_walk_pays_full_cost() {
        let mut w = mapped_walker(8);
        let (r, s) = w.translate(VirtPage(5));
        assert_eq!(r, Some(PhysPage(5)));
        assert_eq!(s.touches, 4);
    }

    #[test]
    fn repeat_walks_touch_only_the_leaf() {
        let mut w = mapped_walker(8);
        w.translate(VirtPage(5));
        let (_, s) = w.translate(VirtPage(6)); // same interior path
        assert_eq!(s.touches, 1, "all interior levels cached");
    }

    #[test]
    fn distant_pages_share_upper_levels() {
        let mut w = mapped_walker(8);
        w.translate(VirtPage(0));
        // Page 513 shares L0/L1 but has a different L2 node (512-entry leaf
        // nodes): only the bottom interior level misses.
        let (_, s) = w.translate(VirtPage(513));
        assert_eq!(s.touches, 2);
    }

    #[test]
    fn flush_restores_full_walks() {
        let mut w = mapped_walker(8);
        w.translate(VirtPage(5));
        w.flush();
        let (_, s) = w.translate(VirtPage(5));
        assert_eq!(s.touches, 4);
    }

    #[test]
    fn tiny_cache_thrashes_on_wide_access() {
        // 1-entry per-level cache, pages from alternating L2 nodes: the
        // bottom interior cache misses every time.
        let mut w = mapped_walker(1);
        let mut total = 0;
        for i in 0..100u64 {
            let v = (i % 2) * 512 + (i / 2) % 64;
            total += w.translate(VirtPage(v)).1.touches;
        }
        // Each access misses the L2-node cache (alternating), so ≥2 touches.
        assert!(total >= 200, "expected thrash, got {total}");
    }

    #[test]
    fn hit_rate_reported() {
        let mut w = mapped_walker(8);
        for v in 0..100u64 {
            w.translate(VirtPage(v));
        }
        assert!(w.hit_rate() > 0.9, "rate {}", w.hit_rate());
    }

    #[test]
    fn effective_epsilon_drops_with_pwc() {
        // The ε-calibration story: average effective touches on a local
        // trace approach 1, versus 4 uncached.
        let mut w = mapped_walker(16);
        let mut total = 0u64;
        let n = 2000u64;
        for i in 0..n {
            let v = (i * 7) % 2048;
            total += w.translate(VirtPage(v)).1.touches;
        }
        let avg = total as f64 / n as f64;
        assert!(avg < 1.6, "avg effective touches {avg}");
    }
}
