//! The Section 8 hybrid: decoupled huge pages over moderate physical chunks.
//!
//! "If an optimal virtual huge page size is `q ≫ hmax` pages, then we could
//! implement decoupled huge pages where the physical huge pages would have
//! size only `q/hmax`, thus achieving all the coverage of the very large
//! huge pages while mitigating the adverse effects on I/Os."
//!
//! Implementation: treat each run of `chunk` base pages as one *chunk*; run
//! the decoupled algorithm `Z` over chunk ids. A TLB entry then covers
//! `hmax × chunk` base pages, while a fault moves `chunk` pages (amplification
//! `chunk` instead of `hmax × chunk`).
//!
//! In pipeline terms this is exactly the [`Stages::map_addr`] and
//! [`Stages::io_scale`] hooks over the decoupled stages: requests map to
//! chunk ids before the TLB probe, and the residency stage's IOs are scaled
//! by `chunk` after the stages run.

use crate::decoupled::{DecoupledConfig, DecoupledStages};
use crate::observe::SimObserver;
use crate::pipeline::{Pipeline, Stages, TlbProbe};
use crate::traits::AccessReport;
use atp_core::RamAllocator;
use atp_types::VirtPage;

/// Stage state of the hybrid manager: decoupled stages over chunk ids.
#[derive(Debug)]
pub struct HybridStages<A: RamAllocator> {
    pub(crate) inner: DecoupledStages<A>,
    chunk: u64,
}

impl<A: RamAllocator> HybridStages<A> {
    /// Builds the stages. `alloc` and `cfg.resident_pages` are in **chunk**
    /// units: the allocator's "pages" are chunks of `chunk` base pages.
    ///
    /// # Panics
    /// Panics if `chunk` is not a power of two.
    pub fn new(alloc: A, cfg: DecoupledConfig, chunk: u64) -> Self {
        assert!(chunk.is_power_of_two(), "chunk must be a power of two");
        Self {
            inner: DecoupledStages::new(alloc, cfg),
            chunk,
        }
    }

    /// Base pages per physically contiguous chunk.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// Effective TLB coverage per entry in base pages: `hmax × chunk`.
    pub fn coverage(&self) -> u64 {
        self.inner.coverage() * self.chunk
    }
}

impl<A: RamAllocator> Stages for HybridStages<A> {
    fn map_addr(&self, v: VirtPage) -> VirtPage {
        VirtPage(v.0 / self.chunk)
    }

    fn io_scale(&self) -> u64 {
        self.chunk // a chunk fault moves `chunk` pages
    }

    fn tlb_stage<O: SimObserver>(&mut self, addr: VirtPage, obs: &mut O) -> TlbProbe {
        self.inner.tlb_stage(addr, obs)
    }

    fn residency_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        self.inner.residency_stage(addr, probe, report, obs);
    }

    fn translate_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        self.inner.translate_stage(addr, probe, report, obs);
    }

    fn name(&self) -> String {
        format!("hybrid(chunk={}, inner={})", self.chunk, self.inner.name())
    }

    fn prepare_batch(&self, addrs: &[VirtPage]) {
        // `addrs` are already chunk ids (the pipeline maps before preparing).
        self.inner.prepare_batch(addrs);
    }
}

/// Decoupled manager over physically contiguous chunks.
pub type HybridMm<A, O = crate::observe::NoopObserver> = Pipeline<HybridStages<A>, O>;

impl<A: RamAllocator> HybridMm<A> {
    /// Builds the hybrid (unobserved). `alloc` and `cfg.resident_pages` are
    /// in **chunk** units.
    ///
    /// # Panics
    /// Panics if `chunk` is not a power of two.
    pub fn new(alloc: A, cfg: DecoupledConfig, chunk: u64) -> Self {
        Pipeline::from_stages(HybridStages::new(alloc, cfg, chunk))
    }
}

impl<A: RamAllocator, O: SimObserver> HybridMm<A, O> {
    /// Base pages per physically contiguous chunk.
    pub fn chunk(&self) -> u64 {
        self.stages().chunk()
    }

    /// Effective TLB coverage per entry in base pages: `hmax × chunk`.
    pub fn coverage(&self) -> u64 {
        self.stages().coverage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::MemoryManager;
    use atp_core::IcebergAlloc;
    use atp_replacement::PolicyKind;

    fn hybrid(chunk: u64) -> HybridMm<IcebergAlloc> {
        HybridMm::new(
            IcebergAlloc::with_geometry(64, 8, 4, 1),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: 32,
                tlb_policy: PolicyKind::Lru,
                resident_pages: 256, // chunks
                ram_policy: PolicyKind::Lru,
                seed: 1,
            },
            chunk,
        )
    }

    #[test]
    fn coverage_multiplies() {
        let h = hybrid(4);
        assert_eq!(h.coverage(), h.stages().inner.coverage() * 4);
    }

    #[test]
    fn fault_amplification_is_chunk_not_coverage() {
        let mut h = hybrid(4);
        let r = h.access(VirtPage(0));
        assert_eq!(r.ios, 4, "fault moves one chunk");
        // Pages within the same chunk are free.
        for p in 1..4u64 {
            let r = h.access(VirtPage(p));
            assert_eq!(r.ios, 0);
        }
    }

    #[test]
    fn chunk_one_is_plain_decoupling() {
        let mut h = hybrid(1);
        let r = h.access(VirtPage(123));
        assert_eq!(r.ios, 1);
    }

    #[test]
    fn fewer_tlb_misses_than_plain_decoupling_on_scans() {
        let mut plain = hybrid(1);
        let mut chunked = hybrid(8);
        for p in 0..1024u64 {
            plain.access(VirtPage(p));
            chunked.access(VirtPage(p));
        }
        assert!(
            chunked.costs().tlb_misses * 7 < plain.costs().tlb_misses,
            "chunked {} vs plain {}",
            chunked.costs().tlb_misses,
            plain.costs().tlb_misses
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_chunk_rejected() {
        hybrid(3);
    }
}
