//! Physically contiguous huge pages: the Section 6 simulator.
//!
//! With huge-page size `h`, both the TLB and RAM operate on huge-page units:
//! a TLB entry translates `h` virtually *and physically* contiguous base
//! pages, and "each page fault moves `h` pages between RAM and secondary
//! memory, at a cost of `h` IOs" — page-fault amplification, the first of
//! the paper's three costs of physical huge pages. RAM holds `P/h` huge-page
//! units (reduced RAM utilization: a unit is resident in full even if only
//! one constituent is hot).
//!
//! `h = 1` recovers classic paging with no huge pages; sweeping
//! `h ∈ {1, 2, 4, …, 1024}` regenerates Figure 1.

use crate::observe::{EvictionEvent, SimObserver, TlbEvent};
use crate::pipeline::{Pipeline, Stages, TlbProbe};
use crate::traits::AccessReport;
use atp_replacement::{AccessResult, AnyPolicy, CacheSim, PolicyKind};
use atp_tlb::Tlb;
use atp_types::{HugePageGeometry, VirtPage};

/// Configuration for [`ClassicMm`].
#[derive(Clone, Copy, Debug)]
pub struct ClassicConfig {
    /// Huge-page size `h` in base pages (power of two).
    pub huge_pages: u64,
    /// Physical memory size in base pages.
    pub phys_pages: u64,
    /// TLB entries ℓ.
    pub tlb_entries: u64,
    /// TLB replacement policy.
    pub tlb_policy: PolicyKind,
    /// RAM replacement policy (over huge-page units).
    pub ram_policy: PolicyKind,
    /// Seed for randomized policies.
    pub seed: u64,
}

impl ClassicConfig {
    /// The paper's Section-6 defaults: LRU everywhere, 1536 TLB entries.
    pub fn paper(huge_pages: u64, phys_pages: u64) -> Self {
        Self {
            huge_pages,
            phys_pages,
            tlb_entries: 1536,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 0,
        }
    }
}

/// Stage state of the classic physical-huge-page manager.
#[derive(Debug)]
pub struct ClassicStages {
    geom: HugePageGeometry,
    tlb: Tlb<(), AnyPolicy>,
    ram: CacheSim<u64, AnyPolicy>,
    h: u64,
}

impl ClassicStages {
    /// Builds the stages.
    ///
    /// # Panics
    /// Panics if `huge_pages` is not a power of two or exceeds `phys_pages`.
    pub fn new(cfg: ClassicConfig) -> Self {
        // atp-lint: allow(unwrap-policy, reason = "constructor contract: documented # Panics on invalid (non-power-of-two) huge-page config")
        let geom = HugePageGeometry::new(cfg.huge_pages).expect("h must be a power of two");
        let ram_units = (cfg.phys_pages / cfg.huge_pages).max(1) as usize;
        assert!(
            cfg.huge_pages <= cfg.phys_pages,
            "huge page larger than physical memory"
        );
        Self {
            geom,
            tlb: Tlb::new(cfg.tlb_entries, cfg.tlb_policy, cfg.seed),
            ram: CacheSim::new(
                ram_units,
                AnyPolicy::new(cfg.ram_policy, ram_units, cfg.seed ^ 1),
            ),
            h: cfg.huge_pages,
        }
    }

    /// Huge-page size in base pages.
    pub fn huge_page_size(&self) -> u64 {
        self.h
    }

    /// RAM capacity in huge-page units.
    pub fn ram_units(&self) -> usize {
        self.ram.capacity()
    }
}

impl Stages for ClassicStages {
    // RAM first: a fault brings the whole physical huge page in (h IOs);
    // the TLB is touched once, after residency, so the probe is deferred.
    fn tlb_stage<O: SimObserver>(&mut self, _addr: VirtPage, _obs: &mut O) -> TlbProbe {
        TlbProbe::Deferred
    }

    fn residency_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        _probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        let u = self.geom.huge_of(addr);
        match self.ram.access(u.id()) {
            AccessResult::Hit => {}
            AccessResult::Miss { evicted } => {
                report.ios = self.h;
                if let Some(old) = evicted {
                    obs.on_eviction(EvictionEvent {
                        unit: old,
                        pages: self.h,
                    });
                    // The evicted unit's translation must leave the TLB —
                    // it no longer has a physical address.
                    if self.tlb.invalidate(atp_types::VirtHugePage(old)).is_some() {
                        obs.on_tlb_event(TlbEvent::Shootdown);
                    }
                }
            }
        }
    }

    fn translate_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        _probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        // Fully associative over huge-page ids; touch-or-fill in one step.
        let u = self.geom.huge_of(addr);
        report.tlb_miss = !self.tlb.access_or_fill(u, || ());
        if report.tlb_miss {
            obs.on_tlb_event(TlbEvent::Fill);
        }
    }

    fn name(&self) -> String {
        format!("classic(h={})", self.h)
    }

    fn prepare_batch(&self, addrs: &[VirtPage]) {
        for &a in addrs {
            let u = self.geom.huge_of(a);
            self.ram.touch(&u.id());
            self.tlb.touch(u);
        }
    }
}

/// The classic physical-huge-page memory manager.
pub type ClassicMm<O = crate::observe::NoopObserver> = Pipeline<ClassicStages, O>;

impl ClassicMm {
    /// Builds the manager (unobserved).
    ///
    /// # Panics
    /// Panics if `huge_pages` is not a power of two or exceeds `phys_pages`.
    pub fn new(cfg: ClassicConfig) -> Self {
        Pipeline::from_stages(ClassicStages::new(cfg))
    }
}

impl<O: SimObserver> ClassicMm<O> {
    /// Huge-page size in base pages.
    pub fn huge_page_size(&self) -> u64 {
        self.stages().huge_page_size()
    }

    /// RAM capacity in huge-page units.
    pub fn ram_units(&self) -> usize {
        self.stages().ram_units()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::MemoryManager;
    use atp_types::Costs;

    fn mm(h: u64, phys: u64, tlb: u64) -> ClassicMm {
        ClassicMm::new(ClassicConfig {
            huge_pages: h,
            phys_pages: phys,
            tlb_entries: tlb,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 0,
        })
    }

    #[test]
    fn h1_costs_one_io_per_fault() {
        let mut m = mm(1, 4, 16);
        let r = m.access(VirtPage(0));
        assert_eq!(r.ios, 1);
        assert!(r.tlb_miss);
        let r = m.access(VirtPage(0));
        assert_eq!(r.ios, 0);
        assert!(!r.tlb_miss);
    }

    #[test]
    fn fault_amplification_is_h() {
        let mut m = mm(8, 64, 16);
        let r = m.access(VirtPage(3));
        assert_eq!(r.ios, 8, "fault moves h pages");
        // Neighbor within the same huge page: free.
        let r = m.access(VirtPage(5));
        assert_eq!(r.ios, 0);
        assert!(!r.tlb_miss, "same TLB entry covers the neighbor");
    }

    #[test]
    fn tlb_coverage_grows_with_h() {
        // Working set of 64 pages; TLB of 4 entries. With h=16, 4 entries
        // cover everything; with h=1 they cover almost nothing.
        let mut small = mm(1, 1 << 10, 4);
        let mut big = mm(16, 1 << 10, 4);
        for round in 0..50u64 {
            for p in 0..64u64 {
                small.access(VirtPage(p));
                big.access(VirtPage(p));
                let _ = round;
            }
        }
        assert!(big.costs().tlb_misses < small.costs().tlb_misses / 10);
    }

    #[test]
    fn reduced_ram_utilization_hurts_ios() {
        // Hot set = one page from each of 32 huge pages; RAM holds 16 units
        // of h=8 (128 pages "used" but only 32 hot). With h=1 all 32 hot
        // pages fit trivially.
        let mut small = mm(1, 128, 64);
        let mut big = mm(8, 128, 64);
        for round in 0..100u64 {
            for i in 0..32u64 {
                small.access(VirtPage(i * 8));
                big.access(VirtPage(i * 8));
                let _ = round;
            }
        }
        assert_eq!(
            small.costs().ios,
            32,
            "h=1: compulsory misses only (hot set fits)"
        );
        assert!(
            big.costs().ios > small.costs().ios * 10,
            "h=8 thrashes: {} vs {}",
            big.costs().ios,
            small.costs().ios
        );
    }

    #[test]
    fn ram_eviction_invalidates_tlb() {
        // RAM of 2 units (h=1), TLB of 16 (bigger than RAM): touching a
        // third page evicts a unit; its TLB entry must go too, so
        // re-touching it is BOTH an IO and a TLB miss.
        let mut m = mm(1, 2, 16);
        m.access(VirtPage(0));
        m.access(VirtPage(1));
        m.access(VirtPage(2)); // evicts 0
        let r = m.access(VirtPage(0));
        assert_eq!(r.ios, 1);
        assert!(r.tlb_miss, "stale TLB entry must have been invalidated");
    }

    #[test]
    fn reset_costs_keeps_state() {
        let mut m = mm(1, 4, 4);
        m.access(VirtPage(0));
        m.reset_costs();
        assert_eq!(m.costs(), Costs::default());
        let r = m.access(VirtPage(0));
        assert_eq!(r.ios, 0, "warm state preserved across reset");
    }

    #[test]
    fn name_mentions_h() {
        assert_eq!(mm(64, 1 << 10, 4).name(), "classic(h=64)");
    }

    #[test]
    fn observer_sees_shootdowns_and_evictions() {
        use crate::observe::Recorder;
        let mut m: ClassicMm<Recorder> = Pipeline::with_observer(
            ClassicStages::new(ClassicConfig {
                huge_pages: 1,
                phys_pages: 2,
                tlb_entries: 16,
                tlb_policy: PolicyKind::Lru,
                ram_policy: PolicyKind::Lru,
                seed: 0,
            }),
            Recorder::new(),
        );
        m.access(VirtPage(0));
        m.access(VirtPage(1));
        m.access(VirtPage(2)); // evicts 0, shoots down its TLB entry
        let c = m.observer().counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.tlb_shootdowns, 1);
        assert_eq!(c.tlb_fills, 3);
        assert_eq!(c.faults, 3);
    }
}
