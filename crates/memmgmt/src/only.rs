//! The single-objective algorithms `X` and `Y` of Theorem 4.
//!
//! Lemma 1: minimizing `C_TLB(X, σ)` is the classic paging problem on the
//! huge-page stream `r(p_1), …, r(p_n)` with a cache of ℓ entries, and
//! minimizing `C_IO(Y, σ)` is classic paging on `σ` with `(1−δ)P` pages.
//! These managers compute exactly those two costs, forming the right-hand
//! side of eq. (7): `C(Z, σ) ≤ C_TLB(X, σ) + C_IO(Y, σ) + n/poly(P)`.
//!
//! As pipelines, each is a degenerate single-stage configuration: `X` runs
//! only the TLB stage (no residency, no translation install beyond the
//! cache's own fill); `Y` bypasses the TLB and runs only the residency
//! stage.

use crate::observe::{EvictionEvent, SimObserver, TlbEvent};
use crate::pipeline::{Pipeline, Stages, TlbProbe};
use crate::traits::AccessReport;
use atp_replacement::{AccessResult, AnyPolicy, CacheSim, PolicyKind};
use atp_types::{HugePageGeometry, VirtPage};

/// Stage state of `X`: a TLB over size-`hmax` huge pages, nothing else.
#[derive(Debug)]
pub struct VirtualOnlyStages {
    geom: HugePageGeometry,
    tlb: CacheSim<u64, AnyPolicy>,
}

impl VirtualOnlyStages {
    /// Builds the stages.
    pub fn new(hmax: u64, tlb_entries: u64, policy: PolicyKind, seed: u64) -> Self {
        let cap = tlb_entries as usize;
        Self {
            // atp-lint: allow(unwrap-policy, reason = "constructor contract: documented # Panics on invalid (non-power-of-two) huge-page config")
            geom: HugePageGeometry::new(hmax).expect("hmax power of two"),
            tlb: CacheSim::new(cap, AnyPolicy::new(policy, cap, seed)),
        }
    }
}

impl Stages for VirtualOnlyStages {
    fn tlb_stage<O: SimObserver>(&mut self, addr: VirtPage, obs: &mut O) -> TlbProbe {
        let u = self.geom.huge_of(addr);
        // The cache fills on miss, so the fill happens here rather than in
        // the translate stage.
        if self.tlb.access(u.id()).is_hit() {
            TlbProbe::Hit
        } else {
            obs.on_tlb_event(TlbEvent::Fill);
            TlbProbe::Miss
        }
    }

    fn residency_stage<O: SimObserver>(
        &mut self,
        _addr: VirtPage,
        _probe: TlbProbe,
        _report: &mut AccessReport,
        _obs: &mut O,
    ) {
    }

    fn translate_stage<O: SimObserver>(
        &mut self,
        _addr: VirtPage,
        _probe: TlbProbe,
        _report: &mut AccessReport,
        _obs: &mut O,
    ) {
    }

    fn name(&self) -> String {
        format!("X(hmax={})", self.geom.pages_per_huge())
    }

    fn prepare_batch(&self, addrs: &[VirtPage]) {
        for &a in addrs {
            self.tlb.touch(&self.geom.huge_of(a).id());
        }
    }
}

/// `X`: cares only about TLB misses, using huge pages of size `hmax`
/// (WLOG per Lemma 1's proof).
pub type VirtualOnlyMm<O = crate::observe::NoopObserver> = Pipeline<VirtualOnlyStages, O>;

impl VirtualOnlyMm {
    /// Builds `X` with `tlb_entries` entries over size-`hmax` huge pages.
    pub fn new(hmax: u64, tlb_entries: u64, policy: PolicyKind, seed: u64) -> Self {
        Pipeline::from_stages(VirtualOnlyStages::new(hmax, tlb_entries, policy, seed))
    }
}

/// Stage state of `Y`: classic paging on base pages, no TLB.
#[derive(Debug)]
pub struct PagingOnlyStages {
    ram: CacheSim<u64, AnyPolicy>,
}

impl PagingOnlyStages {
    /// Builds the stages.
    pub fn new(resident_pages: u64, policy: PolicyKind, seed: u64) -> Self {
        let cap = resident_pages as usize;
        Self {
            ram: CacheSim::new(cap, AnyPolicy::new(policy, cap, seed)),
        }
    }
}

impl Stages for PagingOnlyStages {
    fn tlb_stage<O: SimObserver>(&mut self, _addr: VirtPage, _obs: &mut O) -> TlbProbe {
        TlbProbe::Bypass
    }

    fn residency_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        _probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        match self.ram.access(addr.id()) {
            AccessResult::Hit => {}
            AccessResult::Miss { evicted } => {
                report.ios = 1;
                if let Some(old) = evicted {
                    obs.on_eviction(EvictionEvent {
                        unit: old,
                        pages: 1,
                    });
                }
            }
        }
    }

    fn translate_stage<O: SimObserver>(
        &mut self,
        _addr: VirtPage,
        _probe: TlbProbe,
        _report: &mut AccessReport,
        _obs: &mut O,
    ) {
    }

    fn name(&self) -> String {
        format!("Y(m={})", self.ram.capacity())
    }

    fn prepare_batch(&self, addrs: &[VirtPage]) {
        for &a in addrs {
            self.ram.touch(&a.id());
        }
    }
}

/// `Y`: cares only about IOs — classic paging on base pages with a cache of
/// `(1−δ)P` pages.
pub type PagingOnlyMm<O = crate::observe::NoopObserver> = Pipeline<PagingOnlyStages, O>;

impl PagingOnlyMm {
    /// Builds `Y` with `resident_pages = ⌊(1−δ)P⌋` page slots.
    pub fn new(resident_pages: u64, policy: PolicyKind, seed: u64) -> Self {
        Pipeline::from_stages(PagingOnlyStages::new(resident_pages, policy, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::MemoryManager;

    #[test]
    fn x_counts_only_tlb() {
        let mut x = VirtualOnlyMm::new(4, 2, PolicyKind::Lru, 0);
        for p in [0u64, 1, 4, 8, 0] {
            x.access(VirtPage(p));
        }
        let c = x.costs();
        assert_eq!(c.ios, 0);
        // r-stream: 0,0,1,2,0 with 2 entries LRU → misses 0,1,2,0 = 4.
        assert_eq!(c.tlb_misses, 4);
        assert_eq!(c.tlb_hits, 1);
    }

    #[test]
    fn y_counts_only_ios() {
        let mut y = PagingOnlyMm::new(2, PolicyKind::Lru, 0);
        for p in [0u64, 1, 2, 0] {
            y.access(VirtPage(p));
        }
        let c = y.costs();
        assert_eq!(c.tlb_misses, 0);
        assert_eq!(c.ios, 4, "0,1,2 compulsory + 0 evicted and refetched");
    }

    #[test]
    fn x_with_hmax_one_sees_raw_stream() {
        let mut x = VirtualOnlyMm::new(1, 2, PolicyKind::Lru, 0);
        x.access(VirtPage(0));
        x.access(VirtPage(1));
        x.access(VirtPage(0));
        assert_eq!(x.costs().tlb_misses, 2);
        assert_eq!(x.costs().tlb_hits, 1);
    }

    #[test]
    fn bigger_hmax_never_hurts_on_local_streams() {
        // Sequential scan: with hmax=8, X misses once per 8 pages.
        let mut x1 = VirtualOnlyMm::new(1, 16, PolicyKind::Lru, 0);
        let mut x8 = VirtualOnlyMm::new(8, 16, PolicyKind::Lru, 0);
        for p in 0..256u64 {
            x1.access(VirtPage(p));
            x8.access(VirtPage(p));
        }
        assert_eq!(x1.costs().tlb_misses, 256);
        assert_eq!(x8.costs().tlb_misses, 32);
    }
}
