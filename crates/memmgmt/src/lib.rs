//! Memory-management algorithms in the address-translation cost model
//! (Sections 5–6).
//!
//! A memory-management algorithm controls the TLB contents `T`, the active
//! set `A`, the decoding function `f`, and the virtual-to-physical map `φ`.
//! Its cost on a request sequence is `C = C_TLB + C_IO + C_D` (ε per TLB
//! miss, 1 per IO, ε per decoding miss). This crate implements:
//!
//! * [`ClassicMm`] — physically contiguous huge pages of size `h`: the
//!   trace-driven simulator of Section 6 (each fault moves `h` pages at a
//!   cost of `h` IOs; TLB entries cover `h` pages). `h = 1` is classic
//!   paging with no huge pages.
//! * [`VirtualOnlyMm`] — the TLB-optimizing algorithm `X` of Theorem 4:
//!   only `C_TLB` matters, computed over the huge-page request stream
//!   `r(p_1), r(p_2), …` (Lemma 1).
//! * [`PagingOnlyMm`] — the IO-optimizing algorithm `Y` of Theorem 4: only
//!   `C_IO` matters, classic paging on `σ` with `(1−δ)P` pages (Lemma 1).
//! * [`DecoupledMm`] — the combined algorithm `Z` built from a huge-page
//!   decoupling scheme per the proof of Theorem 4, including the
//!   paging-failure path (cost `1 + ε` per affected request, no TLB
//!   encoding).
//! * [`HybridMm`] — the Section 8 extension: decoupled entries whose slots
//!   are moderate-size physical huge pages (chunks), trading a little IO
//!   amplification for `chunk×` more TLB coverage.
//!
//! All managers are [`Stages`] implementations run by the shared
//! [`Pipeline`] — a staged access path (TLB probe → residency → translate)
//! with a pluggable [`SimObserver`] seam ([`Recorder`] captures per-stage
//! counters and histograms; the default [`NoopObserver`] costs nothing).
//! Every pipeline implements [`MemoryManager`] and can be driven by
//! `atp-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;
pub mod decoupled;
pub mod hybrid;
pub mod observe;
pub mod only;
pub mod pipeline;
pub mod sparse;
pub mod tenancy;
pub mod thp;
pub mod traits;

pub use classic::ClassicMm;
pub use decoupled::DecoupledMm;
pub use hybrid::HybridMm;
pub use observe::{
    latency_classes, EvictionEvent, LatencyClass, NoopObserver, Recorder, SharedRecorder,
    SimObserver, StageCounters, TlbEvent,
};
pub use only::{PagingOnlyMm, VirtualOnlyMm};
pub use pipeline::{Pipeline, Stages, TlbProbe, PREPARE_LANES};
pub use sparse::{SparseConfig, SparseDecoupledMm};
pub use tenancy::{TenantArena, TenantManager, TenantMm, TenantMmConfig};
pub use thp::{ThpConfig, ThpMm, ThpStats};
pub use traits::{AccessReport, MemoryManager};
