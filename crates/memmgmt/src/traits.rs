//! The memory-manager interface.

use atp_types::{Costs, VirtPage};

/// What servicing one page request cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessReport {
    /// The TLB missed (cost ε).
    pub tlb_miss: bool,
    /// Number of IOs performed (cost 1 each; `h` for physical huge pages).
    pub ios: u64,
    /// A decoding miss occurred (cost ε).
    pub decode_miss: bool,
    /// The request hit a page in the failure set `F`.
    pub paging_failure: bool,
}

/// A memory-management algorithm servicing a stream of virtual-page requests.
pub trait MemoryManager {
    /// Services a request for `v`, returning its cost breakdown.
    fn access(&mut self, v: VirtPage) -> AccessReport;

    /// Cumulative event counts.
    fn costs(&self) -> Costs;

    /// Resets the cumulative counters (e.g. after cache warmup) without
    /// touching TLB/RAM state — exactly how the paper measures ("100 million
    /// accesses to warm up the cache, then measured ... for another 100
    /// million accesses").
    fn reset_costs(&mut self);

    /// Human-readable description for reports.
    fn name(&self) -> String;

    /// Hook called by batched drivers after each chunk of `_len` accesses.
    /// Default: no-op; pipelines forward it to their observer.
    fn batch_boundary(&mut self, _len: usize) {}

    /// Services a batch of requests in order. Semantically identical to
    /// calling [`MemoryManager::access`] once per page (the default does
    /// exactly that); batched engines override it to run a software
    /// pipeline — hash precompute and arena prefetch a few accesses ahead
    /// — without changing any observable outcome. Callers that need the
    /// per-access [`AccessReport`]s must use `access` directly.
    fn access_batch(&mut self, vs: &[VirtPage]) {
        for &v in vs {
            self.access(v);
        }
    }
}

impl<M: MemoryManager + ?Sized> MemoryManager for Box<M> {
    fn access(&mut self, v: VirtPage) -> AccessReport {
        (**self).access(v)
    }

    fn costs(&self) -> Costs {
        (**self).costs()
    }

    fn reset_costs(&mut self) {
        (**self).reset_costs()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn batch_boundary(&mut self, len: usize) {
        (**self).batch_boundary(len)
    }

    fn access_batch(&mut self, vs: &[VirtPage]) {
        (**self).access_batch(vs)
    }
}

/// Folds an [`AccessReport`] into a [`Costs`] tally.
pub fn tally(costs: &mut Costs, r: AccessReport) {
    costs.accesses += 1;
    costs.ios += r.ios;
    if r.tlb_miss {
        costs.tlb_misses += 1;
    } else {
        costs.tlb_hits += 1;
    }
    if r.decode_miss {
        costs.decode_misses += 1;
    }
    if r.paging_failure {
        costs.paging_failures += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates() {
        let mut c = Costs::default();
        tally(
            &mut c,
            AccessReport {
                tlb_miss: true,
                ios: 4,
                decode_miss: false,
                paging_failure: false,
            },
        );
        tally(
            &mut c,
            AccessReport {
                tlb_miss: false,
                ios: 0,
                decode_miss: true,
                paging_failure: true,
            },
        );
        assert_eq!(c.accesses, 2);
        assert_eq!(c.ios, 4);
        assert_eq!(c.tlb_misses, 1);
        assert_eq!(c.tlb_hits, 1);
        assert_eq!(c.decode_misses, 1);
        assert_eq!(c.paging_failures, 1);
    }
}
