//! The staged translation pipeline.
//!
//! Every memory manager in this crate services a request through the same
//! three stages, in order:
//!
//! 1. **TLB stage** — probe the translation cache ([`Stages::tlb_stage`]).
//!    The probe can resolve immediately (`Hit`/`Miss`), be `Deferred` to
//!    the translate stage (managers that touch RAM before the TLB, like
//!    the classic huge-page simulator), or `Bypass` the TLB entirely (the
//!    IO-only algorithm `Y`).
//! 2. **Residency stage** — consult the RAM cache, perform IOs, evict and
//!    update the decoupling scheme ([`Stages::residency_stage`]).
//! 3. **Translate stage** — decode/walk and install translations
//!    ([`Stages::translate_stage`]): ψ(u) fills after a miss, deferred
//!    probes, decode-miss re-encodes.
//!
//! [`Pipeline`] owns the stages plus a [`SimObserver`], runs the three
//! stages for each access, applies the address map and IO scale hooks
//! (used by the hybrid chunked manager), emits observer events, and keeps
//! the [`Costs`] tally. Managers are thin [`Stages`] implementations; all
//! probe/tally plumbing lives here, once.

use crate::observe::{NoopObserver, SimObserver, TlbEvent};
use crate::traits::{tally, AccessReport, MemoryManager};
use atp_types::{Costs, VirtPage};

/// Outcome of the TLB stage for one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbProbe {
    /// The TLB holds a translation for the request.
    Hit,
    /// The TLB does not; the translate stage will install one.
    Miss,
    /// The probe is deferred to the translate stage (RAM-first managers
    /// perform a single combined touch-or-fill after residency).
    Deferred,
    /// This manager has no TLB in the request path.
    Bypass,
}

/// A memory manager expressed as the three pipeline stages.
///
/// Stage methods are generic over the observer so that a `NoopObserver`
/// pipeline monomorphizes to the bare access path. Implementations must
/// only report events through `obs`; cost accounting goes through the
/// [`AccessReport`] and is tallied centrally by [`Pipeline`].
pub trait Stages {
    /// Maps the requested page into this manager's internal address space
    /// (the hybrid manager maps base pages to chunk ids). Default:
    /// identity.
    fn map_addr(&self, v: VirtPage) -> VirtPage {
        v
    }

    /// Multiplier applied to the residency stage's IO count (the hybrid
    /// manager moves whole chunks per fault). Default: 1.
    fn io_scale(&self) -> u64 {
        1
    }

    /// Stage 1: probe the TLB for `addr`.
    fn tlb_stage<O: SimObserver>(&mut self, addr: VirtPage, obs: &mut O) -> TlbProbe;

    /// Stage 2: make `addr` resident, recording IOs (and failure-path
    /// costs) in `report`.
    fn residency_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    );

    /// Stage 3: install or refresh translations for `addr`. A `Deferred`
    /// probe must be resolved here by setting `report.tlb_miss`.
    fn translate_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    );

    /// Human-readable description for reports.
    fn name(&self) -> String;

    /// Warms cache lines for a small window of *mapped* upcoming
    /// addresses (the prefetch stage of [`Pipeline::access_batch`]).
    /// Takes `&self` so implementations are structurally incapable of
    /// changing outcomes: they may only touch probe lines
    /// (`CacheSim::touch`, `Tlb::touch`), never policy state, counters,
    /// or membership. Default: no-op.
    fn prepare_batch(&self, _addrs: &[VirtPage]) {}
}

/// Width of the [`Pipeline::access_batch`] prefetch window: addresses are
/// prepared this many ahead so the touched lines are still resident when
/// their access retires.
pub const PREPARE_LANES: usize = 16;

/// A staged, observable memory manager: [`Stages`] + [`SimObserver`] +
/// the shared cost tally.
#[derive(Debug)]
pub struct Pipeline<S: Stages, O: SimObserver = NoopObserver> {
    stages: S,
    observer: O,
    costs: Costs,
}

impl<S: Stages> Pipeline<S> {
    /// Builds an unobserved pipeline (zero-cost [`NoopObserver`]).
    pub fn from_stages(stages: S) -> Self {
        Pipeline::with_observer(stages, NoopObserver)
    }
}

impl<S: Stages, O: SimObserver> Pipeline<S, O> {
    /// Builds a pipeline with an explicit observer.
    pub fn with_observer(stages: S, observer: O) -> Self {
        Pipeline {
            stages,
            observer,
            costs: Costs::default(),
        }
    }

    /// The manager's stage state (TLBs, RAM caches, schemes…).
    pub fn stages(&self) -> &S {
        &self.stages
    }

    /// Mutable stage state (for tests and calibration drivers).
    pub fn stages_mut(&mut self) -> &mut S {
        &mut self.stages
    }

    /// The observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Consumes the pipeline, returning the observer.
    pub fn into_observer(self) -> O {
        self.observer
    }
}

impl<S: Stages, O: SimObserver> MemoryManager for Pipeline<S, O> {
    fn access(&mut self, v: VirtPage) -> AccessReport {
        let addr = self.stages.map_addr(v);
        let mut report = AccessReport::default();

        let probe = self.stages.tlb_stage(addr, &mut self.observer);
        self.stages
            .residency_stage(addr, probe, &mut report, &mut self.observer);
        self.stages
            .translate_stage(addr, probe, &mut report, &mut self.observer);

        match probe {
            TlbProbe::Hit => report.tlb_miss = false,
            TlbProbe::Miss => report.tlb_miss = true,
            // Bypass: no TLB in the path; the model charges nothing (and
            // the tally counts the access as a hit). Deferred: the
            // translate stage resolved the probe into `report`.
            TlbProbe::Bypass | TlbProbe::Deferred => {}
        }
        report.ios *= self.stages.io_scale();

        self.observer.on_tlb_event(if report.tlb_miss {
            TlbEvent::Miss
        } else {
            TlbEvent::Hit
        });
        if report.decode_miss {
            self.observer.on_decode_miss(v);
        }
        tally(&mut self.costs, report);
        self.observer.on_access(v, report);
        report
    }

    fn costs(&self) -> Costs {
        self.costs
    }

    fn reset_costs(&mut self) {
        self.costs = Costs::default();
    }

    fn name(&self) -> String {
        self.stages.name()
    }

    fn batch_boundary(&mut self, len: usize) {
        self.observer.on_batch_boundary(len);
    }

    /// Software-pipelined batch drive: for each [`PREPARE_LANES`]-wide
    /// window, map the addresses, let the stages warm their probe lines
    /// ([`Stages::prepare_batch`], a `&self` hook that cannot change
    /// outcomes), then retire the accesses in order through the normal
    /// staged path. Bit-for-bit equivalent to per-access [`Self::access`].
    fn access_batch(&mut self, vs: &[VirtPage]) {
        let mut mapped = [VirtPage(0); PREPARE_LANES];
        for sub in vs.chunks(PREPARE_LANES) {
            for (i, &v) in sub.iter().enumerate() {
                mapped[i] = self.stages.map_addr(v);
            }
            self.stages.prepare_batch(&mapped[..sub.len()]);
            for &v in sub {
                self.access(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::Recorder;

    /// A toy manager: direct-mapped one-entry TLB over an infinite RAM
    /// that faults on first touch.
    struct Toy {
        tlb: Option<u64>,
        resident: std::collections::HashSet<u64>,
    }

    impl Stages for Toy {
        fn tlb_stage<O: SimObserver>(&mut self, addr: VirtPage, _obs: &mut O) -> TlbProbe {
            if self.tlb == Some(addr.0) {
                TlbProbe::Hit
            } else {
                TlbProbe::Miss
            }
        }

        fn residency_stage<O: SimObserver>(
            &mut self,
            addr: VirtPage,
            _probe: TlbProbe,
            report: &mut AccessReport,
            _obs: &mut O,
        ) {
            if self.resident.insert(addr.0) {
                report.ios = 1;
            }
        }

        fn translate_stage<O: SimObserver>(
            &mut self,
            addr: VirtPage,
            probe: TlbProbe,
            _report: &mut AccessReport,
            obs: &mut O,
        ) {
            if probe == TlbProbe::Miss {
                self.tlb = Some(addr.0);
                obs.on_tlb_event(TlbEvent::Fill);
            }
        }

        fn name(&self) -> String {
            "toy".into()
        }
    }

    fn toy() -> Toy {
        Toy {
            tlb: None,
            resident: Default::default(),
        }
    }

    #[test]
    fn pipeline_tallies_and_reports() {
        let mut p = Pipeline::from_stages(toy());
        let r = p.access(VirtPage(7));
        assert!(r.tlb_miss);
        assert_eq!(r.ios, 1);
        let r = p.access(VirtPage(7));
        assert!(!r.tlb_miss);
        assert_eq!(r.ios, 0);
        let c = p.costs();
        assert_eq!(c.accesses, 2);
        assert_eq!(c.tlb_misses, 1);
        assert_eq!(c.tlb_hits, 1);
        assert_eq!(c.ios, 1);
        assert_eq!(p.name(), "toy");
    }

    #[test]
    fn observer_sees_stage_events() {
        let mut p = Pipeline::with_observer(toy(), Recorder::new());
        p.access(VirtPage(1));
        p.access(VirtPage(1));
        p.access(VirtPage(2));
        p.batch_boundary(3);
        let c = p.observer().counters();
        assert_eq!(c.tlb_misses, 2);
        assert_eq!(c.tlb_hits, 1);
        assert_eq!(c.tlb_fills, 2);
        assert_eq!(c.faults, 2);
        assert_eq!(c.residency_hits, 1);
        assert_eq!(c.batches, 1);
        assert_eq!(p.observer().accesses(), 3);
    }

    #[test]
    fn reset_costs_keeps_stage_state() {
        let mut p = Pipeline::from_stages(toy());
        p.access(VirtPage(1));
        p.reset_costs();
        assert_eq!(p.costs(), Costs::default());
        let r = p.access(VirtPage(1));
        assert_eq!(r.ios, 0, "residency survives the reset");
    }
}
