//! `Z` with sparse TLB values: §5's decoding-miss example, end to end.
//!
//! The dense decoupled manager caps coverage at `hmax = w / bits` because
//! every constituent needs a code slot. This variant stores TLB values as
//! [`SparseValue`]s — up to `K` `(index, code)` pairs — so a single entry
//! can *cover* a huge page of thousands of pages, as long as few of them
//! are resident at once. Resident-but-unencoded pages are still correct:
//! they decode to "unknown", costing a **decoding miss** (ε) and a
//! re-encode attempt, exactly the trade Section 5 describes:
//!
//! > "imagine … a memory-management algorithm chooses to encode for each
//! > virtual huge page u in the TLB only the physical addresses of u's most
//! > commonly accessed constituent pages; then the pages that do not get
//! > encoded would incur decoding misses when they were accessed."
//!
//! Sparse coverage is the right trade for workloads that are *sparse within
//! huge pages* (strides, cold regions); dense encoding wins when runs are
//! fully resident. The `sparse_vs_dense` test pins both directions.
//!
//! The pipeline shape matches dense `Z`, with one addition: the residency
//! stage's hit path may discover a resident-but-unencoded page, which costs
//! a decoding miss and re-encodes for free (this is the only manager whose
//! residency stage consults the TLB probe).

use crate::observe::{EvictionEvent, SimObserver, TlbEvent};
use crate::pipeline::{Pipeline, Stages, TlbProbe};
use crate::traits::AccessReport;
use atp_core::{DecouplingScheme, RamAllocator, SlotCode, SparseValue};
use atp_replacement::{AccessResult, AnyPolicy, CacheSim, PolicyKind};
use atp_tlb::Tlb;
use atp_types::VirtPage;

/// Configuration for [`SparseDecoupledMm`].
#[derive(Clone, Copy, Debug)]
pub struct SparseConfig {
    /// Hardware TLB value width `w` in bits (budget for the pairs).
    pub tlb_value_bits: u32,
    /// Coverage: huge-page size in base pages (may vastly exceed `w/bits`).
    pub coverage: u64,
    /// TLB entries ℓ.
    pub tlb_entries: u64,
    /// TLB replacement policy.
    pub tlb_policy: PolicyKind,
    /// Resident-page budget `m`.
    pub resident_pages: u64,
    /// RAM replacement policy.
    pub ram_policy: PolicyKind,
    /// Seed.
    pub seed: u64,
}

/// Stage state of the sparse-encoding decoupled manager.
#[derive(Debug)]
pub struct SparseStages<A: RamAllocator> {
    scheme: DecouplingScheme<A>,
    tlb: Tlb<SparseValue, AnyPolicy>,
    ram: CacheSim<u64, AnyPolicy>,
    w: u32,
    bits: u32,
}

impl<A: RamAllocator> SparseStages<A> {
    /// Builds the stages.
    ///
    /// # Panics
    /// Panics if `coverage` is not a power of two, the resident budget
    /// exceeds the allocator's frames, or one pair doesn't fit in `w` bits.
    pub fn new(alloc: A, cfg: SparseConfig) -> Self {
        assert!(
            cfg.resident_pages <= alloc.phys_pages(),
            "resident budget exceeds P"
        );
        let bits = alloc.bits_per_code();
        // The scheme's internal (shadow) bookkeeping is dense and unbounded
        // by hardware; only the TLB values are width-limited. Pretend-w for
        // the scheme: enough to hold all `coverage` codes densely.
        let shadow_w = (cfg.coverage as u32) * bits;
        let scheme = DecouplingScheme::with_hmax(alloc, shadow_w, cfg.coverage);
        let cap = cfg.resident_pages as usize;
        Self {
            scheme,
            tlb: Tlb::new(cfg.tlb_entries, cfg.tlb_policy, cfg.seed),
            ram: CacheSim::new(cap, AnyPolicy::new(cfg.ram_policy, cap, cfg.seed ^ 0x5BA3)),
            w: cfg.tlb_value_bits,
            bits,
        }
    }

    /// Coverage per TLB entry, in base pages.
    pub fn coverage(&self) -> u64 {
        self.scheme.hmax()
    }

    /// Pairs per TLB value (`K`).
    pub fn pairs_per_value(&self) -> u32 {
        SparseValue::new(self.w, self.scheme.hmax() as u32, self.bits).capacity()
    }

    /// The underlying scheme.
    pub fn scheme(&self) -> &DecouplingScheme<A> {
        &self.scheme
    }

    /// Builds a fresh sparse value for huge page `u` from the shadow state
    /// (first-come encoding up to `K`).
    fn sparse_psi(&self, u: atp_types::VirtHugePage) -> SparseValue {
        let mut value = SparseValue::new(self.w, self.scheme.hmax() as u32, self.bits);
        let dense = self.scheme.psi(u);
        for i in 0..self.scheme.hmax() as u32 {
            let code = dense.get(i);
            if !code.is_absent() && !value.set(i, code) {
                break; // full
            }
        }
        value
    }
}

impl<A: RamAllocator> Stages for SparseStages<A> {
    fn tlb_stage<O: SimObserver>(&mut self, addr: VirtPage, _obs: &mut O) -> TlbProbe {
        let u = self.scheme.geometry().huge_of(addr);
        if self.tlb.lookup(u).is_some() {
            TlbProbe::Hit
        } else {
            TlbProbe::Miss
        }
    }

    fn residency_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        let geom = self.scheme.geometry();
        let u = geom.huge_of(addr);
        let idx = self.scheme.index_within(addr);

        match self.ram.access(addr.0) {
            AccessResult::Hit => {
                if self.scheme.is_failed(addr) {
                    report.ios += 1;
                    report.decode_miss = true;
                    report.paging_failure = true;
                } else if probe == TlbProbe::Hit {
                    // Resident + covered: does the sparse value know addr?
                    let known = self.tlb.peek(u).and_then(|v| v.get(idx)).is_some();
                    if !known {
                        // §5: resident but unencoded — decoding miss; the
                        // walk result may now be re-encoded for free.
                        report.decode_miss = true;
                        let code = self.scheme.code_of(addr);
                        self.tlb.update(u, |v| {
                            v.set(idx, code);
                        });
                    }
                }
            }
            AccessResult::Miss { evicted } => {
                report.ios += 1;
                if let Some(ev) = evicted {
                    let ev_page = VirtPage(ev);
                    self.scheme.ram_evict(ev_page);
                    obs.on_eviction(EvictionEvent { unit: ev, pages: 1 });
                    let eu = geom.huge_of(ev_page);
                    let eidx = self.scheme.index_within(ev_page);
                    self.tlb.update(eu, |v| {
                        v.set(eidx, SlotCode::ABSENT);
                    });
                }
                match self.scheme.ram_insert(addr) {
                    Ok(_) => {
                        let code = self.scheme.code_of(addr);
                        self.tlb.update(u, |v| {
                            v.set(idx, code); // may drop: future decode miss
                        });
                    }
                    Err(_) => {
                        report.decode_miss = true;
                        report.paging_failure = true;
                    }
                }
            }
        }
    }

    fn translate_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        probe: TlbProbe,
        _report: &mut AccessReport,
        obs: &mut O,
    ) {
        if probe == TlbProbe::Miss {
            let u = self.scheme.geometry().huge_of(addr);
            let psi = self.sparse_psi(u);
            self.tlb.insert(u, psi);
            obs.on_tlb_event(TlbEvent::Fill);
        }
    }

    fn name(&self) -> String {
        format!(
            "Z-sparse(cov={}, K={}, m={})",
            self.coverage(),
            self.pairs_per_value(),
            self.ram.capacity()
        )
    }

    fn prepare_batch(&self, addrs: &[VirtPage]) {
        let geom = self.scheme.geometry();
        for &a in addrs {
            self.tlb.touch(geom.huge_of(a));
            self.ram.touch(&a.0);
        }
    }
}

/// Decoupled manager with sparse TLB encoding.
pub type SparseDecoupledMm<A, O = crate::observe::NoopObserver> = Pipeline<SparseStages<A>, O>;

impl<A: RamAllocator> SparseDecoupledMm<A> {
    /// Builds the manager (unobserved).
    ///
    /// # Panics
    /// Panics if `coverage` is not a power of two, the resident budget
    /// exceeds the allocator's frames, or one pair doesn't fit in `w` bits.
    pub fn new(alloc: A, cfg: SparseConfig) -> Self {
        Pipeline::from_stages(SparseStages::new(alloc, cfg))
    }
}

impl<A: RamAllocator, O: SimObserver> SparseDecoupledMm<A, O> {
    /// Coverage per TLB entry, in base pages.
    pub fn coverage(&self) -> u64 {
        self.stages().coverage()
    }

    /// Pairs per TLB value (`K`).
    pub fn pairs_per_value(&self) -> u32 {
        self.stages().pairs_per_value()
    }

    /// The underlying scheme.
    pub fn scheme(&self) -> &DecouplingScheme<A> {
        self.stages().scheme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoupled::{DecoupledConfig, DecoupledMm};
    use crate::traits::MemoryManager;
    use atp_core::IcebergAlloc;
    use atp_types::VirtPage;

    fn sparse(coverage: u64, seed: u64) -> SparseDecoupledMm<IcebergAlloc> {
        SparseDecoupledMm::new(
            IcebergAlloc::with_geometry(256, 8, 4, seed),
            SparseConfig {
                tlb_value_bits: 64,
                coverage,
                tlb_entries: 32,
                tlb_policy: PolicyKind::Lru,
                resident_pages: 1024,
                ram_policy: PolicyKind::Lru,
                seed,
            },
        )
    }

    #[test]
    fn coverage_exceeds_dense_limit() {
        let m = sparse(1 << 12, 1);
        assert_eq!(m.coverage(), 1 << 12);
        // Dense limit at w=64, 5-bit codes would be 8 pages.
        assert!(m.coverage() > 64 / 5);
        assert!(m.pairs_per_value() >= 2);
    }

    #[test]
    fn sparse_residency_has_no_decode_misses() {
        // One resident page per huge page, K ≥ 1: always encoded.
        let mut m = sparse(1 << 10, 2);
        for i in 0..200u64 {
            m.access(VirtPage(i << 10));
        }
        // Re-touch them all (resident, covered): no decode misses.
        for i in 0..200u64 {
            m.access(VirtPage(i << 10));
        }
        assert_eq!(m.costs().decode_misses, 0);
    }

    #[test]
    fn dense_residency_pays_decoding_misses() {
        // Many resident pages inside ONE huge page, far beyond K.
        let mut m = sparse(1 << 10, 3);
        let k = m.pairs_per_value() as u64;
        for i in 0..64u64 {
            m.access(VirtPage(i)); // same huge page
        }
        // Second pass: all resident, TLB entry hot, but only K encodable at
        // a time → decoding misses on most accesses.
        m.reset_costs();
        for i in 0..64u64 {
            m.access(VirtPage(i));
        }
        let c = m.costs();
        assert_eq!(c.ios, 0, "all resident");
        assert!(
            c.decode_misses >= 64 - k - 1,
            "expected ~{} decode misses, got {}",
            64 - k,
            c.decode_misses
        );
    }

    #[test]
    fn sparse_vs_dense_crossover() {
        // Strided workload (1 page per 1024-page huge page, 200 distinct):
        // dense hmax=8 coverage needs 200 TLB entries worth of churn; sparse
        // coverage 1024 needs ~200/... let the numbers speak.
        let trace: Vec<VirtPage> = (0..4000u64).map(|i| VirtPage((i % 200) << 10)).collect();

        let mut sp = sparse(1 << 10, 4);
        for &p in &trace {
            sp.access(p);
        }

        let mut dense = DecoupledMm::new(
            IcebergAlloc::with_geometry(256, 8, 4, 4),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: 32,
                tlb_policy: PolicyKind::Lru,
                resident_pages: 1024,
                ram_policy: PolicyKind::Lru,
                seed: 4,
            },
        );
        for &p in &trace {
            dense.access(p);
        }

        // Sparse: 200 strided pages fall into 200 huge pages... with
        // coverage 1024 and stride 1024 they're still distinct huge pages,
        // so pick the dimension that matters: total translation cost.
        // (With stride = coverage both cover 1 page/entry; the win comes
        // from *partial* density below.)
        let dense_cost = dense.costs().tlb_misses + dense.costs().decode_misses;
        let sparse_cost = sp.costs().tlb_misses + sp.costs().decode_misses;
        // Equal-stride case: they tie (same entry churn). Now the partially
        // dense case: 4 pages per huge page, 50 huge pages.
        assert!(
            sparse_cost >= dense_cost / 2,
            "sanity: {sparse_cost} vs {dense_cost}"
        );

        let trace2: Vec<VirtPage> = (0..4000u64)
            .map(|i| {
                let hp = (i / 4) % 50;
                let off = (i % 4) * 7; // 4 scattered pages within the huge page
                VirtPage((hp << 10) | off)
            })
            .collect();
        let mut sp2 = sparse(1 << 10, 5);
        for &p in &trace2 {
            sp2.access(p);
        }
        let mut dense2 = DecoupledMm::new(
            IcebergAlloc::with_geometry(256, 8, 4, 5),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: 32,
                tlb_policy: PolicyKind::Lru,
                resident_pages: 1024,
                ram_policy: PolicyKind::Lru,
                seed: 5,
            },
        );
        for &p in &trace2 {
            dense2.access(p);
        }
        // 50 working huge pages fit the 32-entry TLB poorly at dense hmax=8
        // (50 entries × scattered offsets 0..22 → 3+ entries per huge page),
        // while sparse covers each with ONE entry and K≥3 pairs encode the
        // 4 offsets with occasional decode misses.
        let dense2_cost = dense2.costs().tlb_misses;
        let sparse2_cost = sp2.costs().tlb_misses + sp2.costs().decode_misses;
        assert!(
            sparse2_cost < dense2_cost,
            "sparse should win on partial density: {sparse2_cost} vs {dense2_cost}"
        );
    }

    #[test]
    fn cost_identities_hold() {
        let mut m = sparse(1 << 8, 6);
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(7, 0);
        for _ in 0..5000 {
            m.access(VirtPage(rng.next_below(1 << 14)));
        }
        let c = m.costs();
        assert_eq!(c.accesses, 5000);
        assert_eq!(c.tlb_hits + c.tlb_misses, c.accesses);
        m.scheme().check_invariants();
    }
}
