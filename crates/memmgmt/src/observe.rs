//! The observability seam of the translation pipeline.
//!
//! Every [`Pipeline`](crate::pipeline::Pipeline) is generic over a
//! [`SimObserver`] that sees each access, each TLB event, each residency
//! eviction, and each decoding miss as they happen. The default
//! [`NoopObserver`] has empty inlined methods, so an unobserved pipeline
//! compiles to exactly the un-instrumented access path — observation is
//! zero-cost unless you opt in.
//!
//! [`Recorder`] is the batteries-included observer: per-stage counters plus
//! reuse-distance and access-latency histograms, cheap enough to leave on
//! for full Figure-1 runs. [`SharedRecorder`] wraps it in `Rc<RefCell>` so
//! a caller can keep a handle while the pipeline owns the observer (the
//! `atp --observe` flag uses this through `Box<dyn MemoryManager>`).

use crate::traits::AccessReport;
use atp_hash::FxHashMap;
use atp_types::VirtPage;
use std::cell::RefCell;
use std::rc::Rc;

/// An event at the TLB stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbEvent {
    /// The probe found a translation (cost 0).
    Hit,
    /// The probe missed (cost ε).
    Miss,
    /// A fresh translation was installed after a miss.
    Fill,
    /// A translation was dropped because its unit lost residency
    /// (the single-core analogue of a shootdown).
    Shootdown,
}

/// A residency-stage eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictionEvent {
    /// Raw key of the evicted replacement unit (page, huge page, or chunk
    /// id, at whatever granularity the manager pages at).
    pub unit: u64,
    /// Base pages the eviction dropped from RAM.
    pub pages: u64,
}

/// Observer of pipeline execution.
///
/// All methods default to no-ops; implement only what you need. Methods
/// take `&mut self` so observers can accumulate state without interior
/// mutability; the pipeline is generic over the concrete observer type, so
/// calls are statically dispatched and vanish entirely for
/// [`NoopObserver`].
pub trait SimObserver {
    /// One access was fully serviced with the given cost breakdown.
    fn on_access(&mut self, _v: VirtPage, _report: AccessReport) {}

    /// A TLB-stage event occurred.
    fn on_tlb_event(&mut self, _event: TlbEvent) {}

    /// The residency stage evicted a unit from RAM.
    fn on_eviction(&mut self, _event: EvictionEvent) {}

    /// The translate stage failed to decode a resident page (cost ε).
    fn on_decode_miss(&mut self, _v: VirtPage) {}

    /// The driver finished a batch of `len` accesses (streaming runners
    /// call this at every chunk boundary; single accesses never do).
    fn on_batch_boundary(&mut self, _len: usize) {}
}

/// The zero-cost default observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// Number of log₂ buckets in the [`Recorder`] histograms (covers reuse
/// distances up to 2⁶³).
pub const HIST_BUCKETS: usize = 64;

/// Per-stage counters captured by [`Recorder`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// TLB stage: probe hits.
    pub tlb_hits: u64,
    /// TLB stage: probe misses.
    pub tlb_misses: u64,
    /// TLB stage: translations installed.
    pub tlb_fills: u64,
    /// TLB stage: residency-loss invalidations.
    pub tlb_shootdowns: u64,
    /// Translate stage: decoding misses.
    pub decode_misses: u64,
    /// Residency stage: accesses serviced without IO.
    pub residency_hits: u64,
    /// Residency stage: faults (accesses that did ≥ 1 IO).
    pub faults: u64,
    /// Residency stage: total IOs (≥ faults under amplification).
    pub ios: u64,
    /// Residency stage: evictions.
    pub evictions: u64,
    /// Residency stage: base pages dropped by evictions.
    pub evicted_pages: u64,
    /// Paging failures (Theorem 4's out-of-band path).
    pub paging_failures: u64,
    /// Batch boundaries seen.
    pub batches: u64,
}

/// Latency classes of a single access under the paper's cost model
/// (IO = 1, TLB/decode miss = ε, hit free).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyClass {
    /// TLB hit, resident, decoded: cost 0.
    Free,
    /// ε-only: TLB and/or decode miss but no IO.
    Epsilon,
    /// Exactly one IO (plus any ε terms).
    OneIo,
    /// More than one IO — huge-page fault amplification.
    AmplifiedIo,
}

impl LatencyClass {
    /// Classifies a report.
    pub fn of(report: AccessReport) -> Self {
        match report.ios {
            0 if !report.tlb_miss && !report.decode_miss => LatencyClass::Free,
            0 => LatencyClass::Epsilon,
            1 => LatencyClass::OneIo,
            _ => LatencyClass::AmplifiedIo,
        }
    }

    const ALL: [LatencyClass; 4] = [
        LatencyClass::Free,
        LatencyClass::Epsilon,
        LatencyClass::OneIo,
        LatencyClass::AmplifiedIo,
    ];

    fn index(self) -> usize {
        match self {
            LatencyClass::Free => 0,
            LatencyClass::Epsilon => 1,
            LatencyClass::OneIo => 2,
            LatencyClass::AmplifiedIo => 3,
        }
    }
}

/// Recording observer: per-stage counters plus reuse and latency
/// histograms.
#[derive(Clone, Debug)]
pub struct Recorder {
    counters: StageCounters,
    /// log₂-bucketed reuse distances (accesses since the same base page
    /// was last touched); bucket `i` counts distances in `[2^i, 2^{i+1})`.
    reuse_hist: Vec<u64>,
    /// First-ever touches (no reuse distance).
    cold_accesses: u64,
    /// Per-access latency-class counts, indexed by [`LatencyClass`].
    latency_hist: [u64; 4],
    /// Whether `last_touch` is maintained (see
    /// [`Recorder::without_reuse_tracking`]).
    track_reuse: bool,
    last_touch: FxHashMap<u64, u64>,
    clock: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    fn empty(track_reuse: bool) -> Self {
        Recorder {
            counters: StageCounters::default(),
            reuse_hist: vec![0; HIST_BUCKETS],
            cold_accesses: 0,
            latency_hist: [0; 4],
            track_reuse,
            last_touch: FxHashMap::default(),
            clock: 0,
        }
    }

    /// Creates an empty recorder with reuse-distance tracking.
    pub fn new() -> Self {
        Recorder::empty(true)
    }

    /// Creates a recorder that skips the reuse-distance map entirely. The
    /// per-page `last_touch` map otherwise grows with the trace footprint
    /// (unbounded on large virtual spaces); without it the recorder is
    /// constant-size, which is what sweeps and multicore runs want — they
    /// only read the stage counters.
    pub fn without_reuse_tracking() -> Self {
        Recorder::empty(false)
    }

    /// Whether reuse distances are being tracked (and the reuse histogram
    /// and cold-access count are meaningful).
    pub fn tracks_reuse(&self) -> bool {
        self.track_reuse
    }

    /// Per-stage counters so far.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// Reuse-distance histogram (log₂ buckets); `cold` first-touches are
    /// excluded.
    pub fn reuse_histogram(&self) -> &[u64] {
        &self.reuse_hist
    }

    /// Accesses with no prior touch of the same page.
    pub fn cold_accesses(&self) -> u64 {
        self.cold_accesses
    }

    /// Count per [`LatencyClass`].
    pub fn latency_class(&self, class: LatencyClass) -> u64 {
        self.latency_hist[class.index()]
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.clock
    }

    /// Renders a compact multi-line report of everything captured.
    pub fn summary(&self) -> String {
        let c = self.counters;
        let mut out = String::new();
        out.push_str(&format!(
            "tlb       hits={} misses={} fills={} shootdowns={}\n",
            c.tlb_hits, c.tlb_misses, c.tlb_fills, c.tlb_shootdowns
        ));
        out.push_str(&format!(
            "translate decode_misses={} paging_failures={}\n",
            c.decode_misses, c.paging_failures
        ));
        out.push_str(&format!(
            "residency hits={} faults={} ios={} evictions={} evicted_pages={}\n",
            c.residency_hits, c.faults, c.ios, c.evictions, c.evicted_pages
        ));
        out.push_str(&format!(
            "latency   free={} epsilon={} one_io={} amplified={}\n",
            self.latency_class(LatencyClass::Free),
            self.latency_class(LatencyClass::Epsilon),
            self.latency_class(LatencyClass::OneIo),
            self.latency_class(LatencyClass::AmplifiedIo),
        ));
        out.push_str(&format!(
            "reuse     cold={} {}\n",
            self.cold_accesses,
            render_hist(&self.reuse_hist)
        ));
        out.push_str(&format!("batches   {}", c.batches));
        out
    }
}

fn render_hist(hist: &[u64]) -> String {
    let last = hist.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    let cells: Vec<String> = hist[..last]
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("2^{i}:{c}"))
        .collect();
    if cells.is_empty() {
        "(empty)".to_string()
    } else {
        cells.join(" ")
    }
}

impl SimObserver for Recorder {
    fn on_access(&mut self, v: VirtPage, report: AccessReport) {
        self.latency_hist[LatencyClass::of(report).index()] += 1;
        if report.ios == 0 {
            self.counters.residency_hits += 1;
        } else {
            self.counters.faults += 1;
            self.counters.ios += report.ios;
        }
        if report.paging_failure {
            self.counters.paging_failures += 1;
        }
        if self.track_reuse {
            match self.last_touch.insert(v.0, self.clock) {
                None => self.cold_accesses += 1,
                Some(prev) => {
                    let dist = self.clock - prev;
                    let bucket = (64 - dist.leading_zeros()).saturating_sub(1) as usize;
                    self.reuse_hist[bucket.min(HIST_BUCKETS - 1)] += 1;
                }
            }
        }
        self.clock += 1;
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        match event {
            TlbEvent::Hit => self.counters.tlb_hits += 1,
            TlbEvent::Miss => self.counters.tlb_misses += 1,
            TlbEvent::Fill => self.counters.tlb_fills += 1,
            TlbEvent::Shootdown => self.counters.tlb_shootdowns += 1,
        }
    }

    fn on_eviction(&mut self, event: EvictionEvent) {
        self.counters.evictions += 1;
        self.counters.evicted_pages += event.pages;
    }

    fn on_decode_miss(&mut self, _v: VirtPage) {
        self.counters.decode_misses += 1;
    }

    fn on_batch_boundary(&mut self, _len: usize) {
        self.counters.batches += 1;
    }
}

/// A [`Recorder`] behind `Rc<RefCell>`: clone one handle into the pipeline
/// and keep another to read results after the run, even when the pipeline
/// is owned as a `Box<dyn MemoryManager>`.
#[derive(Clone, Debug, Default)]
pub struct SharedRecorder(Rc<RefCell<Recorder>>);

impl SharedRecorder {
    /// Creates a fresh shared recorder.
    pub fn new() -> Self {
        SharedRecorder(Rc::new(RefCell::new(Recorder::new())))
    }

    /// Runs `f` on the inner recorder.
    pub fn with<R>(&self, f: impl FnOnce(&Recorder) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Clones out the inner recorder's current state.
    pub fn snapshot(&self) -> Recorder {
        self.0.borrow().clone()
    }
}

impl SimObserver for SharedRecorder {
    fn on_access(&mut self, v: VirtPage, report: AccessReport) {
        self.0.borrow_mut().on_access(v, report);
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        self.0.borrow_mut().on_tlb_event(event);
    }

    fn on_eviction(&mut self, event: EvictionEvent) {
        self.0.borrow_mut().on_eviction(event);
    }

    fn on_decode_miss(&mut self, v: VirtPage) {
        self.0.borrow_mut().on_decode_miss(v);
    }

    fn on_batch_boundary(&mut self, len: usize) {
        self.0.borrow_mut().on_batch_boundary(len);
    }
}

/// Sums per-class latency counts into the model's total cost (for checks
/// and reports; exact when no access mixes classes unexpectedly).
pub fn latency_classes() -> [LatencyClass; 4] {
    LatencyClass::ALL
}

/// Observer composition: a pair forwards every event to both halves, so a
/// run can capture, say, counters *and* a structured event trace without a
/// bespoke combined observer. Nest pairs for more: `(a, (b, c))`.
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    fn on_access(&mut self, v: VirtPage, report: AccessReport) {
        self.0.on_access(v, report);
        self.1.on_access(v, report);
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        self.0.on_tlb_event(event);
        self.1.on_tlb_event(event);
    }

    fn on_eviction(&mut self, event: EvictionEvent) {
        self.0.on_eviction(event);
        self.1.on_eviction(event);
    }

    fn on_decode_miss(&mut self, v: VirtPage) {
        self.0.on_decode_miss(v);
        self.1.on_decode_miss(v);
    }

    fn on_batch_boundary(&mut self, len: usize) {
        self.0.on_batch_boundary(len);
        self.1.on_batch_boundary(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tlb_miss: bool, ios: u64, decode_miss: bool) -> AccessReport {
        AccessReport {
            tlb_miss,
            ios,
            decode_miss,
            paging_failure: false,
        }
    }

    #[test]
    fn latency_classes_partition_reports() {
        assert_eq!(
            LatencyClass::of(report(false, 0, false)),
            LatencyClass::Free
        );
        assert_eq!(
            LatencyClass::of(report(true, 0, false)),
            LatencyClass::Epsilon
        );
        assert_eq!(
            LatencyClass::of(report(false, 0, true)),
            LatencyClass::Epsilon
        );
        assert_eq!(
            LatencyClass::of(report(true, 1, false)),
            LatencyClass::OneIo
        );
        assert_eq!(
            LatencyClass::of(report(true, 8, false)),
            LatencyClass::AmplifiedIo
        );
    }

    #[test]
    fn recorder_counts_stages() {
        let mut r = Recorder::new();
        r.on_tlb_event(TlbEvent::Miss);
        r.on_tlb_event(TlbEvent::Fill);
        r.on_tlb_event(TlbEvent::Hit);
        r.on_eviction(EvictionEvent { unit: 9, pages: 8 });
        r.on_decode_miss(VirtPage(3));
        r.on_access(VirtPage(0), report(true, 1, false));
        r.on_access(VirtPage(0), report(false, 0, false));
        r.on_batch_boundary(2);
        let c = r.counters();
        assert_eq!(c.tlb_misses, 1);
        assert_eq!(c.tlb_fills, 1);
        assert_eq!(c.tlb_hits, 1);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.evicted_pages, 8);
        assert_eq!(c.decode_misses, 1);
        assert_eq!(c.faults, 1);
        assert_eq!(c.residency_hits, 1);
        assert_eq!(c.batches, 1);
        assert_eq!(r.accesses(), 2);
    }

    #[test]
    fn reuse_histogram_buckets_by_log2() {
        let mut r = Recorder::new();
        // Touch page 5, then 3 other pages, then page 5 again: distance 4.
        for p in [5u64, 1, 2, 3, 5] {
            r.on_access(VirtPage(p), report(false, 0, false));
        }
        assert_eq!(r.cold_accesses(), 4);
        assert_eq!(r.reuse_histogram()[2], 1, "distance 4 lands in bucket 2^2");
    }

    #[test]
    fn shared_recorder_survives_moves() {
        let shared = SharedRecorder::new();
        let mut handle = shared.clone();
        handle.on_access(VirtPage(1), report(true, 0, false));
        assert_eq!(shared.with(|r| r.accesses()), 1);
        assert_eq!(shared.snapshot().latency_class(LatencyClass::Epsilon), 1);
    }

    #[test]
    fn without_reuse_tracking_skips_the_map() {
        let mut r = Recorder::without_reuse_tracking();
        assert!(!r.tracks_reuse());
        for p in [5u64, 1, 2, 3, 5, 5, 5] {
            r.on_access(VirtPage(p), report(false, 0, false));
        }
        assert_eq!(r.accesses(), 7, "clock still advances");
        assert_eq!(r.cold_accesses(), 0, "no first-touch tracking");
        assert!(r.reuse_histogram().iter().all(|&c| c == 0));
        assert_eq!(r.last_touch.len(), 0, "map never populated");
        assert_eq!(
            r.latency_class(LatencyClass::Free),
            7,
            "latency histogram still captured"
        );
    }

    #[test]
    fn default_recorder_tracks_reuse() {
        let mut r = Recorder::default();
        r.on_access(VirtPage(9), report(false, 0, false));
        r.on_access(VirtPage(9), report(false, 0, false));
        assert!(r.tracks_reuse());
        assert_eq!(r.cold_accesses(), 1);
        assert_eq!(r.reuse_histogram()[0], 1);
    }

    #[test]
    fn pair_observer_feeds_both_halves() {
        let mut pair = (Recorder::new(), Recorder::without_reuse_tracking());
        pair.on_tlb_event(TlbEvent::Miss);
        pair.on_eviction(EvictionEvent { unit: 1, pages: 4 });
        pair.on_decode_miss(VirtPage(2));
        pair.on_access(VirtPage(0), report(true, 1, false));
        pair.on_batch_boundary(1);
        for r in [&pair.0, &pair.1] {
            let c = r.counters();
            assert_eq!(c.tlb_misses, 1);
            assert_eq!(c.evictions, 1);
            assert_eq!(c.decode_misses, 1);
            assert_eq!(c.faults, 1);
            assert_eq!(c.batches, 1);
            assert_eq!(r.accesses(), 1);
        }
        assert_eq!(pair.0.cold_accesses(), 1);
        assert_eq!(pair.1.cold_accesses(), 0);
    }

    #[test]
    fn summary_renders() {
        let mut r = Recorder::new();
        r.on_access(VirtPage(0), report(true, 1, false));
        let s = r.summary();
        assert!(s.contains("tlb"));
        assert!(s.contains("residency"));
        assert!(s.contains("reuse"));
    }
}
