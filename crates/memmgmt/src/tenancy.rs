//! Multi-tenant memory management: per-tenant views over one shared
//! backend.
//!
//! Two ways to serve N tenants from one simulation:
//!
//! * [`TenantArena`] wraps *any* single-address-space [`MemoryManager`]
//!   and embeds each tenant's pages into a disjoint region of the
//!   manager's virtual address space (`asid · vspan + v`). Tenant 0's
//!   region is the identity, so an `Asid(0)`-only run drives the wrapped
//!   manager with bit-for-bit the pre-refactor request stream — the
//!   golden-parity guarantee — while staying on the fused single-probe
//!   hot path (no tagging, no extra probes).
//! * [`TenantMm`] is the dedicated ASID-tagged manager: an [`AsidTlb`]
//!   whose capacity all tenants share, over a shared huge-unit RAM pool.
//!   Context switches flush nothing (tagged entries simply stop
//!   matching); retiring a tenant triggers a targeted `flush_asid`
//!   shootdown storm plus bulk RAM teardown, both visible through the
//!   [`SimObserver`] seam.
//!
//! Both implement [`TenantManager`], the interface `atp-sim`'s
//! context-switch-aware driver runs against.

use crate::observe::{EvictionEvent, NoopObserver, SimObserver, TlbEvent};
use crate::traits::{tally, AccessReport, MemoryManager};
use atp_hash::FxHashMap;
use atp_replacement::{AccessResult, AnyPolicy, CacheSim, PolicyKind};
use atp_tlb::AsidTlb;
use atp_types::{Asid, Costs, HugePageGeometry, TaggedHugePage, VirtPage};

/// A memory-management algorithm serving N tenants over shared physical
/// resources.
pub trait TenantManager {
    /// Services tenant `asid`'s request for `v`.
    fn access(&mut self, asid: Asid, v: VirtPage) -> AccessReport;

    /// A context switch from `from` to `to`. Returns the number of TLB
    /// entries shot down (0 for tagged TLBs — that is the point).
    fn context_switch(&mut self, from: Asid, to: Asid) -> u64;

    /// Tenant `asid` exits: tear down its mappings and TLB entries so
    /// the ASID can be recycled. Returns the number of TLB entries shot
    /// down (the retirement's contribution to the shootdown storm).
    fn retire_tenant(&mut self, asid: Asid) -> u64;

    /// Aggregate event counts across all tenants.
    fn costs(&self) -> Costs;

    /// Per-tenant event counts, ascending by ASID.
    fn tenant_costs(&self) -> Vec<(Asid, Costs)>;

    /// Resets cost counters (aggregate and per-tenant) without touching
    /// TLB/RAM state.
    fn reset_costs(&mut self);

    /// Human-readable description for reports.
    fn name(&self) -> String;

    /// Hook called by batched drivers after each chunk of `_len` accesses.
    fn batch_boundary(&mut self, _len: usize) {}
}

/// Address-space interleaving over a single-tenant manager.
///
/// Tenant `a`'s page `v` becomes the wrapped manager's page
/// `a · vspan + v`; all tenants compete for the manager's TLB entries
/// and RAM frames exactly as distinct regions of one big address space
/// would. Context switches and retirements are free: there is no tagged
/// state to flush, cold regions simply age out of the caches.
#[derive(Debug)]
pub struct TenantArena<M: MemoryManager> {
    mgr: M,
    vspan: u64,
    per_tenant: FxHashMap<u32, Costs>,
}

impl<M: MemoryManager> TenantArena<M> {
    /// Wraps `mgr`, giving each tenant `vspan` virtual pages.
    ///
    /// # Panics
    /// Panics if `vspan == 0`.
    pub fn new(mgr: M, vspan: u64) -> Self {
        assert!(vspan > 0, "tenant virtual span must be nonzero");
        Self {
            mgr,
            vspan,
            per_tenant: FxHashMap::default(),
        }
    }

    /// The wrapped manager.
    pub fn inner(&self) -> &M {
        &self.mgr
    }

    /// The per-tenant virtual span.
    pub fn vspan(&self) -> u64 {
        self.vspan
    }
}

impl<M: MemoryManager> TenantManager for TenantArena<M> {
    fn access(&mut self, asid: Asid, v: VirtPage) -> AccessReport {
        assert!(
            v.0 < self.vspan,
            "page {v} outside tenant span {}",
            self.vspan
        );
        let global = VirtPage((asid.0 as u64) * self.vspan + v.0);
        let report = self.mgr.access(global);
        tally(self.per_tenant.entry(asid.0).or_default(), report);
        report
    }

    fn context_switch(&mut self, _from: Asid, _to: Asid) -> u64 {
        0
    }

    fn retire_tenant(&mut self, _asid: Asid) -> u64 {
        0
    }

    fn costs(&self) -> Costs {
        self.mgr.costs()
    }

    fn tenant_costs(&self) -> Vec<(Asid, Costs)> {
        let mut out: Vec<(Asid, Costs)> = self
            .per_tenant
            .iter()
            .map(|(&a, &c)| (Asid(a), c))
            .collect();
        out.sort_by_key(|(a, _)| *a);
        out
    }

    fn reset_costs(&mut self) {
        self.mgr.reset_costs();
        self.per_tenant.clear();
    }

    fn name(&self) -> String {
        format!("arena({})", self.mgr.name())
    }

    fn batch_boundary(&mut self, len: usize) {
        self.mgr.batch_boundary(len);
    }
}

/// Configuration for [`TenantMm`].
#[derive(Clone, Copy, Debug)]
pub struct TenantMmConfig {
    /// Huge-page size `h` in base pages (power of two).
    pub huge_pages: u64,
    /// Shared physical memory size in base pages.
    pub phys_pages: u64,
    /// Shared TLB entries ℓ.
    pub tlb_entries: u64,
    /// TLB replacement policy.
    pub tlb_policy: PolicyKind,
    /// RAM replacement policy (over huge-page units).
    pub ram_policy: PolicyKind,
    /// Seed for randomized policies.
    pub seed: u64,
}

impl TenantMmConfig {
    /// Defaults mirroring [`crate::classic::ClassicConfig::paper`]:
    /// LRU everywhere, 1536 TLB entries.
    pub fn paper(huge_pages: u64, phys_pages: u64) -> Self {
        Self {
            huge_pages,
            phys_pages,
            tlb_entries: 1536,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 0,
        }
    }
}

/// The dedicated ASID-tagged multi-tenant manager.
///
/// RAM-first like the classic simulator: a fault brings the whole huge
/// unit in (`h` IOs) and may evict *another tenant's* unit, whose TLB
/// entry is then shot down. The TLB is a shared [`AsidTlb`]: lookups
/// match private-then-global, capacity pressure crosses tenant
/// boundaries, and context switches flush nothing.
#[derive(Debug)]
pub struct TenantMm<O: SimObserver = NoopObserver> {
    geom: HugePageGeometry,
    tlb: AsidTlb<(), AnyPolicy>,
    ram: CacheSim<TaggedHugePage, AnyPolicy>,
    h: u64,
    observer: O,
    costs: Costs,
    per_tenant: FxHashMap<u32, Costs>,
    switches: u64,
    retirements: u64,
    shootdowns: u64,
}

impl TenantMm<NoopObserver> {
    /// Builds an unobserved manager.
    pub fn new(cfg: TenantMmConfig) -> Self {
        Self::with_observer(cfg, NoopObserver)
    }
}

impl<O: SimObserver> TenantMm<O> {
    /// Builds the manager with an explicit observer.
    ///
    /// # Panics
    /// Panics if `huge_pages` is not a power of two or exceeds
    /// `phys_pages`.
    pub fn with_observer(cfg: TenantMmConfig, observer: O) -> Self {
        // atp-lint: allow(unwrap-policy, reason = "constructor contract: documented # Panics on invalid (non-power-of-two) huge-page config")
        let geom = HugePageGeometry::new(cfg.huge_pages).expect("h must be a power of two");
        assert!(
            cfg.huge_pages <= cfg.phys_pages,
            "huge page larger than physical memory"
        );
        let ram_units = (cfg.phys_pages / cfg.huge_pages).max(1) as usize;
        Self {
            geom,
            tlb: AsidTlb::new(cfg.tlb_entries, cfg.tlb_policy, cfg.seed),
            ram: CacheSim::new(
                ram_units,
                AnyPolicy::new(cfg.ram_policy, ram_units, cfg.seed ^ 1),
            ),
            h: cfg.huge_pages,
            observer,
            costs: Costs::default(),
            per_tenant: FxHashMap::default(),
            switches: 0,
            retirements: 0,
            shootdowns: 0,
        }
    }

    /// The observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Consumes the manager, returning the observer.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// The shared TLB's per-lookup counters.
    pub fn tlb_stats(&self) -> atp_tlb::AsidTlbStats {
        self.tlb.stats()
    }

    /// Context switches seen.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Tenants retired.
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// TLB entries shot down so far (cross-tenant evictions plus
    /// retirement flushes).
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }
}

impl<O: SimObserver> TenantManager for TenantMm<O> {
    fn access(&mut self, asid: Asid, v: VirtPage) -> AccessReport {
        let u = TaggedHugePage::new(asid, self.geom.huge_of(v));
        let mut report = AccessReport::default();

        // Residency first (classic RAM-first order): a fault moves the
        // whole unit at h IOs and may evict any tenant's unit.
        match self.ram.access(u) {
            AccessResult::Hit => {}
            AccessResult::Miss { evicted } => {
                report.ios = self.h;
                if let Some(old) = evicted {
                    self.observer.on_eviction(EvictionEvent {
                        unit: old.huge.0,
                        pages: self.h,
                    });
                    if self.tlb.invalidate(old.asid, old.huge).is_some() {
                        self.observer.on_tlb_event(TlbEvent::Shootdown);
                        self.shootdowns += 1;
                    }
                }
            }
        }

        // One combined TLB touch-or-fill after residency.
        let hit = self.tlb.access_or_fill(asid, u.huge, || ());
        if !hit {
            self.observer.on_tlb_event(TlbEvent::Fill);
        }
        report.tlb_miss = !hit;

        self.observer.on_tlb_event(if report.tlb_miss {
            TlbEvent::Miss
        } else {
            TlbEvent::Hit
        });
        tally(&mut self.costs, report);
        tally(self.per_tenant.entry(asid.0).or_default(), report);
        self.observer.on_access(v, report);
        report
    }

    fn context_switch(&mut self, _from: Asid, _to: Asid) -> u64 {
        self.switches += 1;
        // Tagged TLB: nothing is flushed on a switch.
        0
    }

    fn retire_tenant(&mut self, asid: Asid) -> u64 {
        self.retirements += 1;
        self.ram.remove_matching(|k| k.asid == asid);
        let flushed = self.tlb.flush_asid(asid);
        for _ in 0..flushed {
            self.observer.on_tlb_event(TlbEvent::Shootdown);
        }
        self.shootdowns += flushed;
        flushed
    }

    fn costs(&self) -> Costs {
        self.costs
    }

    fn tenant_costs(&self) -> Vec<(Asid, Costs)> {
        let mut out: Vec<(Asid, Costs)> = self
            .per_tenant
            .iter()
            .map(|(&a, &c)| (Asid(a), c))
            .collect();
        out.sort_by_key(|(a, _)| *a);
        out
    }

    fn reset_costs(&mut self) {
        self.costs = Costs::default();
        self.per_tenant.clear();
    }

    fn name(&self) -> String {
        format!("tenant-mm(h={}, tlb={})", self.h, self.tlb.capacity())
    }

    fn batch_boundary(&mut self, len: usize) {
        self.observer.on_batch_boundary(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{ClassicConfig, ClassicMm};

    fn classic(seed: u64) -> ClassicMm {
        ClassicMm::new(ClassicConfig {
            huge_pages: 8,
            phys_pages: 1 << 10,
            tlb_entries: 32,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed,
        })
    }

    #[test]
    fn arena_single_tenant_is_identity() {
        // Asid(0) through the arena must match the bare manager
        // access-for-access.
        let mut arena = TenantArena::new(classic(3), 1 << 16);
        let mut bare = classic(3);
        for i in 0..2000u64 {
            let v = VirtPage((i * 37) % 600);
            assert_eq!(arena.access(Asid::SINGLE, v), bare.access(v));
        }
        assert_eq!(arena.costs(), bare.costs());
        let per = arena.tenant_costs();
        assert_eq!(per.len(), 1);
        assert_eq!(per[0], (Asid::SINGLE, bare.costs()));
    }

    #[test]
    fn arena_tenants_contend_for_shared_state() {
        let mut arena = TenantArena::new(classic(3), 1 << 16);
        // Tenant 1 warms a working set, then tenant 2 streams over its
        // own region, evicting tenant 1's pages from the shared RAM.
        for v in 0..512u64 {
            arena.access(Asid(1), VirtPage(v));
        }
        for v in 0..2048u64 {
            arena.access(Asid(2), VirtPage(v));
        }
        let rewarm: u64 = (0..512u64)
            .map(|v| arena.access(Asid(1), VirtPage(v)).ios)
            .sum();
        assert!(rewarm > 0, "tenant 2's stream must displace tenant 1");
        assert_eq!(arena.tenant_costs().len(), 2);
    }

    #[test]
    fn tenant_mm_switch_flushes_nothing() {
        let mut mm = TenantMm::new(TenantMmConfig::paper(8, 1 << 10));
        for v in 0..64u64 {
            mm.access(Asid(1), VirtPage(v));
        }
        assert_eq!(mm.context_switch(Asid(1), Asid(2)), 0);
        mm.access(Asid(2), VirtPage(0));
        assert_eq!(mm.context_switch(Asid(2), Asid(1)), 0);
        // Tenant 1's entries survived both switches: all hits.
        let misses_before = mm.costs().tlb_misses;
        for v in 0..64u64 {
            mm.access(Asid(1), VirtPage(v));
        }
        assert_eq!(mm.costs().tlb_misses, misses_before);
        assert_eq!(mm.switches(), 2);
    }

    #[test]
    fn tenant_mm_retirement_storms() {
        let mut mm = TenantMm::new(TenantMmConfig::paper(8, 1 << 10));
        for v in 0..64u64 {
            mm.access(Asid(1), VirtPage(v));
            mm.access(Asid(2), VirtPage(v));
        }
        let storm = mm.retire_tenant(Asid(1));
        assert!(storm > 0, "retirement must shoot down tenant 1's entries");
        assert_eq!(mm.shootdowns(), storm);
        assert_eq!(mm.retirements(), 1);
        // Tenant 1 is cold again; tenant 2 is untouched.
        assert!(mm.access(Asid(1), VirtPage(0)).tlb_miss);
        assert!(!mm.access(Asid(2), VirtPage(0)).tlb_miss);
    }

    #[test]
    fn tenant_mm_cross_tenant_eviction_shoots_down() {
        // RAM of 4 units: tenant 2's fills evict tenant 1's units and
        // shoot down their TLB entries.
        let mut mm = TenantMm::new(TenantMmConfig {
            huge_pages: 1,
            phys_pages: 4,
            tlb_entries: 64,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 0,
        });
        for v in 0..4u64 {
            mm.access(Asid(1), VirtPage(v));
        }
        for v in 0..4u64 {
            mm.access(Asid(2), VirtPage(v));
        }
        assert_eq!(mm.shootdowns(), 4, "each cross-tenant eviction shoots down");
    }

    #[test]
    fn tenant_mm_per_tenant_costs_partition_aggregate() {
        let mut mm = TenantMm::new(TenantMmConfig::paper(8, 1 << 10));
        for i in 0..300u64 {
            mm.access(Asid((i % 3) as u32 + 1), VirtPage(i % 97));
        }
        let agg = mm.costs();
        let per = mm.tenant_costs();
        assert_eq!(per.len(), 3);
        assert_eq!(
            per.iter().map(|(_, c)| c.accesses).sum::<u64>(),
            agg.accesses
        );
        assert_eq!(per.iter().map(|(_, c)| c.ios).sum::<u64>(), agg.ios);
        assert_eq!(
            per.iter().map(|(_, c)| c.tlb_misses).sum::<u64>(),
            agg.tlb_misses
        );
    }
}
