//! A transparent-huge-pages (THP) style manager — the fragmentation story.
//!
//! Section 1 lists three costs of physical huge pages; the third is
//! **fragmentation**: "Pages in a huge page are stored contiguously in RAM.
//! To make room for them, any (non-huge) pages in the way must be evicted…"
//! and §7 describes how Linux THP "attempts to reserve enough space for a
//! huge page and, in case of failure, falls back to allocating typical 4 kB
//! pages". This manager emulates that mechanism:
//!
//! * pages fault in individually (1 IO) into **arbitrary** free frames;
//! * when every base page of an aligned virtual run becomes resident, the
//!   manager attempts **promotion**: find `h` physically contiguous,
//!   aligned free frames, migrate the run there, and install a huge
//!   mapping (covered by a single TLB entry thereafter);
//! * if no contiguous run exists — fragmentation — the promotion *fails*
//!   and the run stays at base granularity (counted, like Ingens/HawkEye
//!   motivate);
//! * a promoted huge page is one replacement unit: evicting it drops all
//!   `h` pages, and re-faulting it costs `h` IOs — page-fault amplification
//!   returns through the back door.
//!
//! The `thp_fragmentation` example shows promotion failures rising as churn
//! scatters free frames.
//!
//! As a pipeline, THP is a RAM-first manager like the classic simulator:
//! the TLB probe is deferred, the residency stage does all fault/promote/
//! evict work, and the translate stage performs the single touch-or-fill
//! against whichever key (huge or base) currently maps the page.

use crate::observe::{EvictionEvent, SimObserver, TlbEvent};
use crate::pipeline::{Pipeline, Stages, TlbProbe};
use crate::traits::AccessReport;
use atp_hash::{CounterRng, FxHashMap};
use atp_replacement::{AccessResult, AnyPolicy, CacheSim, PolicyKind};
use atp_tlb::Tlb;
use atp_types::{HugePageGeometry, PhysPage, VirtHugePage, VirtPage};

/// Configuration for [`ThpMm`].
#[derive(Clone, Copy, Debug)]
pub struct ThpConfig {
    /// Huge-page size `h` in base pages (power of two).
    pub huge_pages: u64,
    /// Physical memory in base pages (multiple of `h` for clean alignment).
    pub phys_pages: u64,
    /// TLB entries.
    pub tlb_entries: u64,
    /// Replacement policy for the unified unit cache and the TLB.
    pub policy: PolicyKind,
    /// Seed (drives the fragmentation-inducing random frame choice).
    pub seed: u64,
}

/// THP bookkeeping counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThpStats {
    /// Successful promotions to huge mappings.
    pub promotions: u64,
    /// Promotions abandoned for lack of a contiguous run (fragmentation).
    pub promotion_failures: u64,
    /// Pages copied during promotion migrations.
    pub migrated_pages: u64,
    /// Huge units demoted by eviction.
    pub huge_evictions: u64,
}

/// Physical frame pool with contiguity queries.
#[derive(Clone, Debug)]
struct FramePool {
    free: Vec<bool>,
    free_count: u64,
    rng: CounterRng,
}

impl FramePool {
    fn new(frames: u64, seed: u64) -> Self {
        Self {
            free: vec![true; frames as usize],
            free_count: frames,
            rng: CounterRng::new(seed, 0x7F9A),
        }
    }

    /// Takes an arbitrary free frame (uniformly random — models long-run
    /// allocator scatter; first-fit would artificially stay compact).
    fn take_any(&mut self) -> Option<PhysPage> {
        if self.free_count == 0 {
            return None;
        }
        loop {
            let f = self.rng.next_below(self.free.len() as u64) as usize;
            if self.free[f] {
                self.free[f] = false;
                self.free_count -= 1;
                return Some(PhysPage(f as u64));
            }
        }
    }

    /// Takes an aligned run of `h` contiguous frames, if one exists.
    fn take_contiguous(&mut self, h: u64) -> Option<PhysPage> {
        let groups = self.free.len() as u64 / h;
        'group: for g in 0..groups {
            let base = (g * h) as usize;
            for i in 0..h as usize {
                if !self.free[base + i] {
                    continue 'group;
                }
            }
            for i in 0..h as usize {
                self.free[base + i] = false;
            }
            self.free_count -= h;
            return Some(PhysPage(base as u64));
        }
        None
    }

    fn release(&mut self, frame: PhysPage, count: u64) {
        for i in 0..count {
            let f = (frame.0 + i) as usize;
            debug_assert!(!self.free[f], "double free of frame {f}");
            self.free[f] = true;
        }
        self.free_count += count;
    }

    /// Largest aligned contiguous free run, in frames (for instrumentation).
    fn max_contiguous(&self, h: u64) -> u64 {
        let groups = self.free.len() as u64 / h;
        let mut best = 0u64;
        for g in 0..groups {
            let base = (g * h) as usize;
            let mut run = 0;
            for i in 0..h as usize {
                if self.free[base + i] {
                    run += 1;
                } else {
                    run = 0;
                }
                best = best.max(run);
            }
        }
        best
    }
}

// Unit keys: a huge unit is tagged with the top bit.
const HUGE_TAG: u64 = 1 << 63;

/// Stage state of the THP-style manager.
#[derive(Debug)]
pub struct ThpStages {
    geom: HugePageGeometry,
    pool: FramePool,
    /// Base-page mappings (pages in non-promoted runs).
    pub(crate) base_frames: FxHashMap<VirtPage, PhysPage>,
    /// Promoted runs: huge page → base frame of its contiguous run.
    pub(crate) huge_frames: FxHashMap<VirtHugePage, PhysPage>,
    /// Resident base-page count per (non-promoted) huge page.
    run_population: FxHashMap<VirtHugePage, u32>,
    units: CacheSim<u64, AnyPolicy>,
    tlb: Tlb<(), AnyPolicy>,
    stats: ThpStats,
    h: u64,
}

impl ThpStages {
    /// Builds the stages.
    ///
    /// # Panics
    /// Panics if `huge_pages` is not a power of two or doesn't divide
    /// `phys_pages`.
    pub fn new(cfg: ThpConfig) -> Self {
        // atp-lint: allow(unwrap-policy, reason = "constructor contract: documented # Panics on invalid (non-power-of-two) huge-page config")
        let geom = HugePageGeometry::new(cfg.huge_pages).expect("h power of two");
        assert!(
            cfg.phys_pages.is_multiple_of(cfg.huge_pages),
            "phys_pages must be a multiple of h"
        );
        let cap = cfg.phys_pages as usize; // unit cache bounded by frames
        Self {
            geom,
            pool: FramePool::new(cfg.phys_pages, cfg.seed),
            base_frames: FxHashMap::default(),
            huge_frames: FxHashMap::default(),
            run_population: FxHashMap::default(),
            units: CacheSim::new(cap, AnyPolicy::new(cfg.policy, cap, cfg.seed ^ 0x7)),
            tlb: Tlb::new(cfg.tlb_entries, cfg.policy, cfg.seed ^ 0x9),
            stats: ThpStats::default(),
            h: cfg.huge_pages,
        }
    }

    /// THP counters.
    pub fn thp_stats(&self) -> ThpStats {
        self.stats
    }

    /// Free frames remaining.
    pub fn free_frames(&self) -> u64 {
        self.pool.free_count
    }

    /// Largest aligned contiguous free run (fragmentation gauge).
    pub fn max_contiguous_free(&self) -> u64 {
        self.pool.max_contiguous(self.h)
    }

    /// Physical frame of `v`, if resident.
    pub fn frame_of(&self, v: VirtPage) -> Option<PhysPage> {
        let u = self.geom.huge_of(v);
        if let Some(&base) = self.huge_frames.get(&u) {
            return Some(PhysPage(base.0 + self.geom.index_within(v)));
        }
        self.base_frames.get(&v).copied()
    }

    fn evict_unit<O: SimObserver>(&mut self, unit: u64, obs: &mut O) {
        if unit & HUGE_TAG != 0 {
            let u = VirtHugePage(unit & !HUGE_TAG);
            // atp-lint: allow(unwrap-policy, reason = "invariant: promotion only rewrites units recorded in huge_frames")
            let base = self.huge_frames.remove(&u).expect("promoted unit mapped");
            self.pool.release(base, self.h);
            if self.tlb.invalidate(u).is_some() {
                obs.on_tlb_event(TlbEvent::Shootdown);
            }
            self.stats.huge_evictions += 1;
            obs.on_eviction(EvictionEvent {
                unit,
                pages: self.h,
            });
        } else {
            let v = VirtPage(unit);
            // atp-lint: allow(unwrap-policy, reason = "invariant: demotion only rewrites units recorded in base_frames")
            let frame = self.base_frames.remove(&v).expect("base unit mapped");
            self.pool.release(frame, 1);
            let u = self.geom.huge_of(v);
            if let Some(pop) = self.run_population.get_mut(&u) {
                *pop -= 1;
                if *pop == 0 {
                    self.run_population.remove(&u);
                }
            }
            // Base-page TLB entries are keyed by the page id.
            if self.tlb.invalidate(VirtHugePage(v.0)).is_some() {
                obs.on_tlb_event(TlbEvent::Shootdown);
            }
            obs.on_eviction(EvictionEvent { unit, pages: 1 });
        }
    }

    /// Brings in base page `v` (must be absent); evicts units (via the
    /// replacement policy) until a frame is free. The unit cache's entry
    /// capacity equals the frame count, so frames — not entries — are the
    /// binding constraint.
    fn fault_base<O: SimObserver>(&mut self, v: VirtPage, obs: &mut O) -> u64 {
        let ios = 1;
        let frame = loop {
            if let Some(frame) = self.pool.take_any() {
                break frame;
            }
            // atp-lint: allow(unwrap-policy, reason = "invariant: eviction is only reached while a resident unit exists")
            let victim = self.units.evict_one().expect("resident unit exists");
            self.evict_unit(victim, obs);
        };
        if let Some(victim) = self.units.insert_cold(v.0) {
            // Entry capacity reached before frames ran out (possible when
            // huge units freed many frames): honor the policy's choice.
            self.evict_unit(victim, obs);
        }
        self.base_frames.insert(v, frame);
        *self.run_population.entry(self.geom.huge_of(v)).or_insert(0) += 1;

        // Promotion check: full run resident?
        let u = self.geom.huge_of(v);
        if self.run_population.get(&u).copied().unwrap_or(0) as u64 == self.h {
            self.try_promote(u, obs);
        }
        ios
    }

    /// Attempts to promote run `u`. Migration copies are in-RAM and free in
    /// the cost model; they are tracked in [`ThpStats`].
    fn try_promote<O: SimObserver>(&mut self, u: VirtHugePage, obs: &mut O) {
        match self.pool.take_contiguous(self.h) {
            None => {
                self.stats.promotion_failures += 1;
            }
            Some(base) => {
                self.stats.promotions += 1;
                // Migrate: free old scattered frames, drop base units.
                for v in self.geom.constituents(u) {
                    // atp-lint: allow(unwrap-policy, reason = "invariant: every page of a resident run has a base frame")
                    let old = self.base_frames.remove(&v).expect("run resident");
                    self.pool.release(old, 1);
                    self.units.remove(&v.0);
                    if self.tlb.invalidate(VirtHugePage(v.0)).is_some() {
                        obs.on_tlb_event(TlbEvent::Shootdown);
                    }
                    self.stats.migrated_pages += 1;
                }
                self.run_population.remove(&u);
                self.huge_frames.insert(u, base);
                if let Some(victim) = self.units.insert_cold(HUGE_TAG | u.0) {
                    self.evict_unit(victim, obs);
                }
            }
        }
    }
}

impl Stages for ThpStages {
    fn tlb_stage<O: SimObserver>(&mut self, _addr: VirtPage, _obs: &mut O) -> TlbProbe {
        // RAM-first manager: a fault may promote the run, changing which
        // TLB key covers the page — the probe waits for residency.
        TlbProbe::Deferred
    }

    fn residency_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        _probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        let u = self.geom.huge_of(addr);
        if self.huge_frames.contains_key(&u) {
            // Promoted: one unit for the whole run.
            let hit = matches!(self.units.access(HUGE_TAG | u.0), AccessResult::Hit);
            debug_assert!(hit, "promoted unit must be resident");
        } else if self.base_frames.contains_key(&addr) {
            let r = self.units.access(addr.0);
            debug_assert!(r.is_hit());
        } else {
            report.ios = self.fault_base(addr, obs);
        }
    }

    fn translate_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        _probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        // After a fault the run may have been promoted: pick the TLB key
        // (huge run vs. single page) from the post-residency state.
        let u = self.geom.huge_of(addr);
        let key = if self.huge_frames.contains_key(&u) {
            u
        } else {
            VirtHugePage(addr.0)
        };
        report.tlb_miss = !self.tlb.access_or_fill(key, || ());
        if report.tlb_miss {
            obs.on_tlb_event(TlbEvent::Fill);
        }
    }

    fn name(&self) -> String {
        format!("thp(h={})", self.h)
    }

    fn prepare_batch(&self, addrs: &[VirtPage]) {
        for &a in addrs {
            // Pick the keys the stages will probe from the *current*
            // promotion state (read-only; a fault in the window may still
            // flip it — prefetch is best-effort, correctness lives in the
            // stages).
            let u = self.geom.huge_of(a);
            if self.huge_frames.contains_key(&u) {
                self.units.touch(&(HUGE_TAG | u.0));
                self.tlb.touch(u);
            } else {
                self.units.touch(&a.0);
                self.tlb.touch(VirtHugePage(a.0));
            }
        }
    }
}

/// The THP-style memory manager.
pub type ThpMm<O = crate::observe::NoopObserver> = Pipeline<ThpStages, O>;

impl ThpMm {
    /// Builds the manager (unobserved).
    ///
    /// # Panics
    /// Panics if `huge_pages` is not a power of two or doesn't divide
    /// `phys_pages`.
    pub fn new(cfg: ThpConfig) -> Self {
        Pipeline::from_stages(ThpStages::new(cfg))
    }
}

impl<O: SimObserver> ThpMm<O> {
    /// THP counters.
    pub fn thp_stats(&self) -> ThpStats {
        self.stages().thp_stats()
    }

    /// Free frames remaining.
    pub fn free_frames(&self) -> u64 {
        self.stages().free_frames()
    }

    /// Largest aligned contiguous free run (fragmentation gauge).
    pub fn max_contiguous_free(&self) -> u64 {
        self.stages().max_contiguous_free()
    }

    /// Physical frame of `v`, if resident.
    pub fn frame_of(&self, v: VirtPage) -> Option<PhysPage> {
        self.stages().frame_of(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::MemoryManager;

    fn mm(h: u64, phys: u64) -> ThpMm {
        ThpMm::new(ThpConfig {
            huge_pages: h,
            phys_pages: phys,
            tlb_entries: 16,
            policy: PolicyKind::Lru,
            seed: 1,
        })
    }

    #[test]
    fn full_run_promotes_in_empty_memory() {
        let mut m = mm(8, 64);
        for v in 0..8u64 {
            m.access(VirtPage(v));
        }
        let s = m.thp_stats();
        assert_eq!(s.promotions, 1);
        assert_eq!(s.migrated_pages, 8);
        assert_eq!(s.promotion_failures, 0);
        // Frames are physically contiguous and aligned now.
        let base = m.frame_of(VirtPage(0)).unwrap();
        assert_eq!(base.0 % 8, 0);
        for v in 0..8u64 {
            assert_eq!(m.frame_of(VirtPage(v)), Some(PhysPage(base.0 + v)));
        }
    }

    #[test]
    fn promoted_run_uses_one_tlb_entry() {
        let mut m = mm(8, 64);
        for v in 0..8u64 {
            m.access(VirtPage(v));
        }
        m.reset_costs();
        for v in 0..8u64 {
            m.access(VirtPage(v));
        }
        // After promotion the whole run costs at most one TLB miss.
        assert!(m.costs().tlb_misses <= 1);
        assert_eq!(m.costs().ios, 0);
    }

    #[test]
    fn fragmentation_blocks_promotion() {
        // Tiny memory: 2 huge groups of 8. Scatter single residents across
        // both groups so no aligned run of 8 is ever free, then complete a
        // run and watch promotion fail.
        let mut m = mm(8, 16);
        // Touch one page from many different runs to scatter frames.
        for r in 0..8u64 {
            m.access(VirtPage(100 * 8 + r * 8)); // distinct runs, 1 page each
        }
        // Now complete one full run.
        for v in 0..8u64 {
            m.access(VirtPage(v));
        }
        let s = m.thp_stats();
        assert!(
            s.promotion_failures > 0,
            "scattered free space must defeat promotion: {s:?}"
        );
    }

    #[test]
    fn huge_eviction_frees_all_frames_and_amplifies_refault() {
        // 16 groups of 8: the first run's 8 random frames cannot block all
        // groups, so promotion is certain.
        let mut m = mm(8, 128);
        for v in 0..8u64 {
            m.access(VirtPage(v)); // promote run 0
        }
        assert_eq!(m.thp_stats().promotions, 1);
        // Flood with base pages from distinct runs (never completing one):
        // LRU pressure must eventually evict the stale huge unit whole.
        for r in 0..200u64 {
            m.access(VirtPage(1000 * 8 + r * 8));
        }
        let s = m.thp_stats();
        assert!(
            s.huge_evictions >= 1,
            "huge unit should be evicted whole: {s:?}"
        );
        // Re-access the promoted run: it is gone; pages fault individually.
        m.reset_costs();
        m.access(VirtPage(0));
        assert!(m.costs().ios >= 1);
    }

    #[test]
    fn frame_accounting_is_conserved() {
        let mut m = mm(4, 32);
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(5, 0);
        for _ in 0..2000 {
            m.access(VirtPage(rng.next_below(256)));
            let resident_base = m.stages().base_frames.len() as u64;
            let resident_huge = m.stages().huge_frames.len() as u64 * 4;
            assert_eq!(
                resident_base + resident_huge + m.free_frames(),
                32,
                "frames leaked or double-counted"
            );
        }
    }

    #[test]
    fn injective_frames_under_churn() {
        let mut m = mm(4, 32);
        use atp_hash::CounterRng;
        use std::collections::HashSet;
        let mut rng = CounterRng::new(7, 0);
        for _ in 0..1500 {
            m.access(VirtPage(rng.next_below(64)));
            let mut seen = HashSet::new();
            for (&v, &f) in m.stages().base_frames.iter() {
                assert!(seen.insert(f.0), "frame shared at {v:?}");
            }
            for (&u, &base) in m.stages().huge_frames.iter() {
                for i in 0..4u64 {
                    assert!(seen.insert(base.0 + i), "huge frame shared at {u:?}");
                }
            }
        }
    }

    #[test]
    fn max_contiguous_gauge_moves() {
        let mut m = mm(8, 32);
        assert_eq!(m.max_contiguous_free(), 8);
        m.access(VirtPage(0)); // one random frame now taken
        assert!(m.max_contiguous_free() <= 8);
    }
}
