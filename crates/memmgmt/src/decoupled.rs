//! `Z`: the decoupled memory-management algorithm of Theorem 4.
//!
//! Construction (following the proof): take the TLB-replacement behaviour of
//! `X` (here: the TLB's own policy over the size-`hmax` huge-page stream),
//! the RAM-replacement behaviour of `Y` (the page-granular cache policy with
//! `(1−δ)P` capacity), and glue them with a huge-page decoupling scheme
//! `D`:
//!
//! * a TLB miss installs ψ(u) — the scheme's current encoding for `u` — at
//!   cost ε;
//! * a RAM miss fetches exactly **one** base page (cost 1 — no page-fault
//!   amplification), the allocator assigns `φ(p)`, and any TLB-resident
//!   value whose huge page covers `p` (or the evicted page) is updated in
//!   place, free of charge;
//! * a **paging failure** (the allocator has no legal slot) is serviced
//!   out-of-band: the page is brought in anyway at cost `1 + ε` per access
//!   (IO + decoding miss) and receives no TLB encoding, until `Y` evicts it.
//!
//! The result enjoys eq. (7): `C(Z,σ) ≤ C_TLB(X,σ) + C_IO(Y,σ) + n/poly(P)`.
//!
//! In pipeline terms, `Z` is the canonical three-stage manager: probe first
//! (hardware order), page-granular residency with free in-place TLB value
//! maintenance, then a ψ(u) fill on the probe miss.

use crate::observe::{EvictionEvent, SimObserver, TlbEvent};
use crate::pipeline::{Pipeline, Stages, TlbProbe};
use crate::traits::AccessReport;
use atp_core::{DecouplingScheme, RamAllocator, SlotCode, TlbValue};
use atp_replacement::{AccessResult, AnyPolicy, CacheSim, PolicyKind};
use atp_tlb::Tlb;
use atp_types::VirtPage;

/// Configuration for [`DecoupledMm`].
#[derive(Clone, Copy, Debug)]
pub struct DecoupledConfig {
    /// TLB value width `w` in bits.
    pub tlb_value_bits: u32,
    /// TLB entries ℓ.
    pub tlb_entries: u64,
    /// TLB replacement policy (the `X` role).
    pub tlb_policy: PolicyKind,
    /// Page-granular resident-set capacity `m = ⌊(1−δ)P⌋` (the `Y` role).
    pub resident_pages: u64,
    /// RAM replacement policy (the `Y` role).
    pub ram_policy: PolicyKind,
    /// Seed for randomized policies.
    pub seed: u64,
}

/// Stage state of the decoupled manager `Z`.
#[derive(Debug)]
pub struct DecoupledStages<A: RamAllocator> {
    pub(crate) scheme: DecouplingScheme<A>,
    pub(crate) tlb: Tlb<TlbValue, AnyPolicy>,
    pub(crate) ram: CacheSim<u64, AnyPolicy>,
}

impl<A: RamAllocator> DecoupledStages<A> {
    /// Builds the stages from an allocator and configuration.
    ///
    /// # Panics
    /// Panics if `resident_pages` exceeds the allocator's physical memory
    /// (the resource-augmentation contract `m ≤ (1−δ)P` would be violated).
    pub fn new(alloc: A, cfg: DecoupledConfig) -> Self {
        assert!(
            cfg.resident_pages <= alloc.phys_pages(),
            "resident budget m={} exceeds P={}",
            cfg.resident_pages,
            alloc.phys_pages()
        );
        let cap = cfg.resident_pages as usize;
        Self {
            scheme: DecouplingScheme::new(alloc, cfg.tlb_value_bits),
            tlb: Tlb::new(cfg.tlb_entries, cfg.tlb_policy, cfg.seed),
            ram: CacheSim::new(cap, AnyPolicy::new(cfg.ram_policy, cap, cfg.seed ^ 0xF00D)),
        }
    }

    /// The decoupling scheme (for hmax, bits, failure stats…).
    pub fn scheme(&self) -> &DecouplingScheme<A> {
        &self.scheme
    }

    /// Effective TLB coverage per entry, in base pages.
    pub fn coverage(&self) -> u64 {
        self.scheme.hmax()
    }
}

impl<A: RamAllocator> Stages for DecoupledStages<A> {
    fn tlb_stage<O: SimObserver>(&mut self, addr: VirtPage, _obs: &mut O) -> TlbProbe {
        // Lookup first (hardware order); the fill happens in the translate
        // stage so the installed ψ(u) is fresh.
        let u = self.scheme.geometry().huge_of(addr);
        if self.tlb.lookup(u).is_some() {
            TlbProbe::Hit
        } else {
            TlbProbe::Miss
        }
    }

    fn residency_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        _probe: TlbProbe,
        report: &mut AccessReport,
        obs: &mut O,
    ) {
        let geom = self.scheme.geometry();
        let u = geom.huge_of(addr);
        // RAM step: Y's policy over base pages.
        match self.ram.access(addr.0) {
            AccessResult::Hit => {
                if self.scheme.is_failed(addr) {
                    // Theorem 4 failure path: 1 + ε per access to a failed
                    // page (temporary IO + decoding miss), no TLB encoding.
                    report.ios += 1;
                    report.decode_miss = true;
                    report.paging_failure = true;
                }
            }
            AccessResult::Miss { evicted } => {
                report.ios += 1; // exactly one base page — no amplification
                if let Some(ev) = evicted {
                    let ev_page = VirtPage(ev);
                    self.scheme.ram_evict(ev_page);
                    obs.on_eviction(EvictionEvent { unit: ev, pages: 1 });
                    // Clear the evicted page's code in any TLB-resident value.
                    let eu = geom.huge_of(ev_page);
                    let idx = self.scheme.index_within(ev_page);
                    self.tlb.update(eu, |val| val.set(idx, SlotCode::ABSENT));
                }
                match self.scheme.ram_insert(addr) {
                    Ok(_frame) => {
                        let idx = self.scheme.index_within(addr);
                        let code = self.scheme.code_of(addr);
                        self.tlb.update(u, |val| val.set(idx, code));
                    }
                    Err(_) => {
                        // Placement failed: the 1 IO above covers the
                        // temporary fetch; the ensuing decoding miss costs ε.
                        report.decode_miss = true;
                        report.paging_failure = true;
                    }
                }
            }
        }
    }

    fn translate_stage<O: SimObserver>(
        &mut self,
        addr: VirtPage,
        probe: TlbProbe,
        _report: &mut AccessReport,
        obs: &mut O,
    ) {
        let u = self.scheme.geometry().huge_of(addr);
        if probe == TlbProbe::Miss {
            self.tlb.insert(u, self.scheme.psi(u));
            obs.on_tlb_event(TlbEvent::Fill);
        }

        // Eq. (4) invariant: a TLB-resident value must decode the page we
        // just serviced, unless the page is in the failure set.
        debug_assert!(
            self.scheme.is_failed(addr)
                || self
                    .tlb
                    .peek(u)
                    .is_none_or(|val| self.scheme.decode(addr, val) == self.scheme.frame_of(addr)),
            "decode invariant violated for {addr:?}"
        );
    }

    fn name(&self) -> String {
        format!(
            "Z(hmax={}, bits={}, m={})",
            self.scheme.hmax(),
            self.scheme.bits_per_code(),
            self.ram.capacity()
        )
    }

    fn prepare_batch(&self, addrs: &[VirtPage]) {
        let geom = self.scheme.geometry();
        for &a in addrs {
            self.tlb.touch(geom.huge_of(a));
            self.ram.touch(&a.0);
        }
    }
}

/// The decoupled memory manager `Z`.
pub type DecoupledMm<A, O = crate::observe::NoopObserver> = Pipeline<DecoupledStages<A>, O>;

impl<A: RamAllocator> DecoupledMm<A> {
    /// Builds `Z` from an allocator and configuration (unobserved).
    ///
    /// # Panics
    /// Panics if `resident_pages` exceeds the allocator's physical memory.
    pub fn new(alloc: A, cfg: DecoupledConfig) -> Self {
        Pipeline::from_stages(DecoupledStages::new(alloc, cfg))
    }
}

impl<A: RamAllocator, O: SimObserver> DecoupledMm<A, O> {
    /// The decoupling scheme (for hmax, bits, failure stats…).
    pub fn scheme(&self) -> &DecouplingScheme<A> {
        self.stages().scheme()
    }

    /// Effective TLB coverage per entry, in base pages.
    pub fn coverage(&self) -> u64 {
        self.stages().coverage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::only::{PagingOnlyMm, VirtualOnlyMm};
    use crate::traits::MemoryManager;
    use atp_core::{IcebergAlloc, IcebergParams};
    use atp_hash::CounterRng;

    fn iceberg_z(seed: u64) -> DecoupledMm<IcebergAlloc> {
        // P = 2^14 pages; theory-derived geometry.
        let params = IcebergParams::derive(1 << 14);
        DecoupledMm::new(
            IcebergAlloc::new(&params, seed),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: 64,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed,
            },
        )
    }

    #[test]
    fn no_page_fault_amplification() {
        let mut z = iceberg_z(1);
        let h = z.coverage();
        assert!(h >= 8, "iceberg at 2^14 should give hmax >= 8, got {h}");
        // Touch one page per huge page: each fault costs exactly 1 IO.
        for i in 0..100u64 {
            let r = z.access(VirtPage(i * h));
            assert_eq!(r.ios, 1, "decoupling must not amplify IOs");
        }
    }

    #[test]
    fn tlb_coverage_matches_huge_pages() {
        let mut z = iceberg_z(2);
        let h = z.coverage();
        // Sequential scan: one TLB miss per huge page, like virtual huge
        // pages — despite page-granular RAM.
        let n = 64 * h;
        for p in 0..n {
            z.access(VirtPage(p));
        }
        assert_eq!(z.costs().tlb_misses, 64);
        assert_eq!(z.costs().ios, n, "every page faults exactly once");
    }

    #[test]
    fn matches_x_plus_y_exactly_without_failures() {
        // Theorem 4's accounting is exact when no paging failures occur:
        // Z's TLB misses equal X's and Z's IOs equal Y's on any trace.
        let params = IcebergParams::derive(1 << 14);
        let mut z = iceberg_z(3);
        let h = z.coverage();
        let mut x = VirtualOnlyMm::new(h, 64, PolicyKind::Lru, 3);
        let mut y = PagingOnlyMm::new(params.max_resident, PolicyKind::Lru, 3);
        let mut rng = CounterRng::new(99, 0);
        for _ in 0..60_000 {
            // Skewed trace over 4× the resident budget.
            let span = params.max_resident * 4;
            let r = rng.next_f64();
            let p = ((r * r) * span as f64) as u64;
            z.access(VirtPage(p));
            x.access(VirtPage(p));
            y.access(VirtPage(p));
        }
        assert_eq!(z.costs().paging_failures, 0, "theory params: no failures");
        assert_eq!(z.costs().tlb_misses, x.costs().tlb_misses);
        assert_eq!(z.costs().ios, y.costs().ios);
    }

    #[test]
    fn failure_path_costs_one_plus_epsilon() {
        // Degenerate allocator (1 bin, 1+1 slots) with a RAM budget of 3
        // pages: the third resident page must fail placement.
        let alloc = IcebergAlloc::with_geometry(1, 1, 1, 7);
        let mut z = DecoupledMm::new(
            alloc,
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: 8,
                tlb_policy: PolicyKind::Lru,
                resident_pages: 2, // within P
                ram_policy: PolicyKind::Lru,
                seed: 7,
            },
        );
        // With m=2 ≤ P=2 there is never a failure...
        z.access(VirtPage(0));
        z.access(VirtPage(1));
        assert_eq!(z.costs().paging_failures, 0);

        // ...but a same-bin collision can still fail: force it by filling
        // the single bin and bringing in a third page after eviction leaves
        // the *other* page's slot occupied. Instead, rebuild with m=2 but an
        // allocator of P=4 where both pages hash to one bin: use m=3 > slots
        // of any single bin. Simpler: m = 3 with bins such that 3 pages can
        // collide. Use 3 bins × (1,1) and find colliding pages.
        let alloc = IcebergAlloc::with_geometry(3, 1, 1, 13);
        let mut z = DecoupledMm::new(
            alloc,
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: 8,
                tlb_policy: PolicyKind::Lru,
                resident_pages: 6,
                ram_policy: PolicyKind::Lru,
                seed: 13,
            },
        );
        // Touch many distinct pages; with 6 resident slots over 6 physical
        // slots across 3 bins, collisions are inevitable.
        let mut failures = 0u64;
        for p in 0..6u64 {
            let r = z.access(VirtPage(p));
            failures += u64::from(r.paging_failure);
            if r.paging_failure {
                assert_eq!(r.ios, 1);
                assert!(r.decode_miss);
            }
        }
        assert!(failures > 0, "collision-forced failure expected");
        // Accesses to a failed page keep costing 1 + ε while it is resident.
        let c_before = z.costs();
        for p in 0..6u64 {
            z.access(VirtPage(p));
        }
        let c_after = z.costs();
        assert_eq!(
            c_after.paging_failures - c_before.paging_failures,
            c_after.ios - c_before.ios,
            "every failed access re-pays its IO"
        );
    }

    #[test]
    fn eviction_keeps_tlb_values_fresh() {
        // A huge page stays in the TLB while its constituents churn through
        // RAM; every access must decode correctly (debug_assert enforces it).
        let mut z = iceberg_z(5);
        let h = z.coverage();
        let m = z.stages().ram.capacity() as u64;
        // Working set larger than RAM to force evictions, all within few
        // huge pages to keep TLB entries alive.
        let span = m + h * 4;
        let mut rng = CounterRng::new(123, 0);
        for _ in 0..50_000 {
            let p = rng.next_below(span);
            z.access(VirtPage(p));
        }
        z.scheme().check_invariants();
        assert!(z.costs().ios > 0);
    }

    #[test]
    fn costs_identity_holds() {
        use atp_types::CostModel;
        let mut z = iceberg_z(6);
        let mut rng = CounterRng::new(7, 7);
        for _ in 0..20_000 {
            z.access(VirtPage(rng.next_below(1 << 15)));
        }
        let c = z.costs();
        let m = CostModel::new(0.25);
        let total = c.total(m);
        let expect = c.ios as f64 + 0.25 * (c.tlb_misses as f64) + 0.25 * (c.decode_misses as f64);
        assert!((total - expect).abs() < 1e-9);
        assert_eq!(c.accesses, 20_000);
    }

    #[test]
    fn recorder_matches_costs() {
        use crate::observe::Recorder;
        let params = IcebergParams::derive(1 << 14);
        let mut z: DecoupledMm<IcebergAlloc, Recorder> = Pipeline::with_observer(
            DecoupledStages::new(
                IcebergAlloc::new(&params, 9),
                DecoupledConfig {
                    tlb_value_bits: 64,
                    tlb_entries: 64,
                    tlb_policy: PolicyKind::Lru,
                    resident_pages: params.max_resident,
                    ram_policy: PolicyKind::Lru,
                    seed: 9,
                },
            ),
            Recorder::new(),
        );
        let mut rng = CounterRng::new(11, 0);
        for _ in 0..30_000 {
            z.access(VirtPage(rng.next_below(1 << 15)));
        }
        let costs = z.costs();
        let obs = z.observer().counters();
        assert_eq!(obs.tlb_hits, costs.tlb_hits);
        assert_eq!(obs.tlb_misses, costs.tlb_misses);
        assert_eq!(obs.tlb_fills, costs.tlb_misses, "every Z miss fills ψ(u)");
        assert_eq!(obs.ios, costs.ios);
        assert_eq!(obs.decode_misses, costs.decode_misses);
        assert_eq!(obs.residency_hits + obs.faults, costs.accesses);
    }
}
