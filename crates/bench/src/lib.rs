//! Shared infrastructure for the figure/table reproducers.
//!
//! Every `bin/` target regenerates one of the paper's artifacts (see
//! DESIGN.md §3 for the index). All default to a laptop-scale configuration
//! that preserves the paper's ratios; pass `--paper` for the full-scale
//! parameters (64 GB address spaces, 100 M accesses — budget hours and RAM
//! accordingly).

#![forbid(unsafe_code)]

pub mod gate;
pub mod harness;

use atp_memmgmt::classic::{ClassicConfig, ClassicMm};
use atp_replacement::PolicyKind;
use atp_types::{Costs, VirtPage};

/// Run-scale selector parsed from CLI args.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dimensions, same ratios; minutes on a laptop.
    Laptop,
    /// The paper's exact dimensions; hours.
    Paper,
}

impl Scale {
    /// Parses `--paper` from argv.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Laptop
        }
    }
}

/// Prints a TSV header line.
pub fn tsv_header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints one TSV row.
pub fn tsv_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// The huge-page sizes of Figure 1: `h ∈ {2^0, …, 2^10}`.
pub fn figure1_sizes() -> Vec<u64> {
    (0..=10).map(|i| 1u64 << i).collect()
}

/// Runs a classic manager over a shared trace with the paper protocol and
/// returns measured costs.
pub fn classic_run(
    trace: &[VirtPage],
    h: u64,
    phys_pages: u64,
    tlb_entries: u64,
    warmup: u64,
    measure: u64,
) -> Costs {
    let mut m = ClassicMm::new(ClassicConfig {
        huge_pages: h,
        phys_pages,
        tlb_entries,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 0xF16,
    });
    atp_sim::run(&mut m, trace.iter().copied(), warmup, measure).costs
}

/// Drives a full Figure-1 sweep over `trace` and prints the table, then the
/// decoupled reference point.
pub fn figure1_table(
    label: &str,
    trace: &[VirtPage],
    phys_pages: u64,
    tlb_entries: u64,
    warmup: u64,
    measure: u64,
) {
    use atp_core::{IcebergAlloc, IcebergParams};
    use atp_memmgmt::decoupled::DecoupledConfig;
    use atp_memmgmt::DecoupledMm;

    println!(
        "# {label}: P={phys_pages} pages, ℓ={tlb_entries}, warmup={warmup}, measure={measure}"
    );
    println!("# opt_ios_full: Belady lower bound on IOs over the FULL trace (warmup+measure),");
    println!("# at huge-page granularity — the offline floor no replacement policy can beat.");
    tsv_header(&["h", "ios", "tlb_misses", "opt_ios_full"]);
    let sizes = figure1_sizes();
    let rows = atp_sim::sweep(&sizes, 0, |&h| {
        let c = classic_run(trace, h, phys_pages, tlb_entries, warmup, measure);
        // Offline OPT at huge-page granularity: each miss moves h pages.
        let huge_trace: Vec<u64> = trace.iter().map(|p| p.0 / h).collect();
        let units = (phys_pages / h).max(1) as usize;
        let opt = atp_replacement::opt::opt_misses(&huge_trace, units).misses * h;
        (h, c, opt)
    });
    for (h, c, opt) in rows {
        tsv_row(&[
            h.to_string(),
            c.ios.to_string(),
            c.tlb_misses.to_string(),
            opt.to_string(),
        ]);
    }

    let params = IcebergParams::derive(phys_pages);
    let mut z = DecoupledMm::new(
        IcebergAlloc::new(&params, 0xF16),
        DecoupledConfig {
            tlb_value_bits: 64,
            tlb_entries,
            tlb_policy: PolicyKind::Lru,
            resident_pages: params.max_resident,
            ram_policy: PolicyKind::Lru,
            seed: 0xF16,
        },
    );
    let hmax = z.coverage();
    let s = atp_sim::run(&mut z, trace.iter().copied(), warmup, measure);
    tsv_row(&[
        format!("decoupled(hmax={hmax})"),
        s.costs.ios.to_string(),
        s.costs.tlb_misses.to_string(),
    ]);
    println!(
        "# decoupled: bits/code={}, δ_eff={:.3}, paging failures={}",
        params.bits_per_code, params.delta_eff, s.costs.paging_failures
    );
}
