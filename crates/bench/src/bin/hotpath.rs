//! Hot-path throughput harness: accesses/sec for every TLB variant ×
//! policy × trace, written to `BENCH_hotpath.json` so the perf trajectory
//! of the single-probe slot-arena core is tracked over time.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin hotpath              # full run
//! cargo run --release -p atp-bench --bin hotpath -- --quick   # CI smoke
//! cargo run --release -p atp-bench --bin hotpath -- --baseline BENCH_hotpath.json
//! cargo run --release -p atp-bench --bin hotpath -- --gate 1.5  # fail below floor
//! cargo run --release -p atp-bench --bin hotpath -- --gate 1.5 --gate-file BENCH_hotpath.json
//! ```
//!
//! Everything except the timing fields is deterministic: fixed seeds, a
//! fixed variant matrix, and a `hits` checksum per cell that pins the
//! simulated behaviour (if a refactor changes `hits`, it changed
//! *semantics*, not just speed). `--baseline` re-runs the matrix and
//! prints per-cell speedups against a previous JSON.
//!
//! The `legacy_*` variants re-implement the pre-fused design in this
//! binary — `contains` → `access` → `values.get` triple probe, a separate
//! key→value hash map, and a `Box<dyn Policy>` callback per operation — so
//! one binary measures the before/after of the slot-arena refactor
//! forever, not just in the PR that landed it.
//!
//! The `batched_*` variants drive [`BatchTlb`], the software-pipelined
//! engine (hash precompute → wide probe → arena prefetch → in-order
//! apply). Their median paired ratios against the adjacent fused cells
//! are written to the JSON as `hotpath_paired_ratio` gauges, and
//! `--gate <floor>` turns those ratios into an exit code — see
//! `atp_bench::gate`.

use std::time::Instant;

use atp_bench::gate::{self, RatioRow};
use atp_hash::FxHashMap;
use atp_replacement::{
    make_policy, AnyPolicy, CacheSim, Clock, Fifo, Lru, Policy, PolicyBuild, PolicyKind, Sieve,
};
use atp_tlb::{BatchTlb, SetAssocTlb, SplitTlb, Tlb, TwoLevelTlb};
use atp_types::{VirtHugePage, VirtPage};
use atp_workloads::{Graph500Trace, Sequential, Zipfian};

/// Paper-default fully-associative TLB size (Cascade Lake L2 dTLB).
const TLB_ENTRIES: u64 = 1536;
/// Cascade Lake L1 dTLB: 64 entries, fully associative in hardware. At
/// this size every translation structure is L1-cache-resident, so the
/// cells isolate probe/dispatch overhead rather than memory latency.
const L1_TLB_ENTRIES: u64 = 64;
/// Base pages per huge page for trace coarsening (2 MB / 4 kB).
const HUGE: u64 = 512;
/// Trace window length. Kept small enough (1 MB of `u64`s) to stay
/// cache-resident: a timed pass loops the window several times, so the
/// harness measures the translation structures, not the DRAM bandwidth of
/// streaming a giant trace array — which would add a uniform per-access
/// cost to every variant and compress all ratios toward 1×.
const TRACE_WINDOW: usize = 1 << 17;

// ---------------------------------------------------------------------------
// Legacy replica: the pre-fused TLB design, preserved for comparison.
// ---------------------------------------------------------------------------

/// Sentinel of the seed's `IndexList` (usize links).
const LNIL: usize = usize::MAX;

/// The seed's intrusive list, as shipped before the slot-arena refactor:
/// `usize` links, explicit head/tail fields, and data-dependent "am I the
/// head/tail?" branches in `remove` (the current `IndexList` uses `u32`
/// links through a circular sentinel instead).
struct LegacyList {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
    len: usize,
}

impl LegacyList {
    fn new(capacity: usize) -> Self {
        Self {
            prev: vec![LNIL; capacity],
            next: vec![LNIL; capacity],
            head: LNIL,
            tail: LNIL,
            len: 0,
        }
    }

    fn back(&self) -> Option<usize> {
        (self.tail != LNIL).then_some(self.tail)
    }

    fn push_front(&mut self, s: usize) {
        self.prev[s] = LNIL;
        self.next[s] = self.head;
        if self.head != LNIL {
            self.prev[self.head] = s;
        } else {
            self.tail = s;
        }
        self.head = s;
        self.len += 1;
    }

    fn remove(&mut self, s: usize) {
        let (p, n) = (self.prev[s], self.next[s]);
        if p != LNIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != LNIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[s] = LNIL;
        self.next[s] = LNIL;
        self.len -= 1;
    }

    fn move_to_front(&mut self, s: usize) {
        if self.head != s {
            self.remove(s);
            self.push_front(s);
        }
    }
}

/// The seed's LRU policy over [`LegacyList`], so the `legacy_full_lru`
/// cells measure the genuinely pre-refactor hit path, not the current
/// list internals behind the old probe structure.
struct LegacyLru {
    recency: LegacyList,
}

impl Policy for LegacyLru {
    fn on_insert(&mut self, s: usize) {
        self.recency.push_front(s);
    }

    fn on_hit(&mut self, s: usize) {
        self.recency.move_to_front(s);
    }

    fn choose_victim(&mut self) -> usize {
        self.recency.back().expect("choose_victim on empty cache")
    }

    fn on_remove(&mut self, s: usize) {
        self.recency.remove(s);
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }
}

/// The old keys-only cache sim: key→slot map + slot→key arena + boxed
/// policy. No values — those lived in a second hash map in the TLB.
struct LegacyCacheSim {
    capacity: usize,
    map: FxHashMap<VirtHugePage, usize>,
    keys: Vec<Option<VirtHugePage>>,
    free: Vec<usize>,
    policy: Box<dyn Policy>,
    hits: u64,
}

impl LegacyCacheSim {
    fn new(capacity: usize, policy: Box<dyn Policy>) -> Self {
        Self {
            capacity,
            map: FxHashMap::default(),
            keys: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            policy,
            hits: 0,
        }
    }

    fn contains(&self, k: &VirtHugePage) -> bool {
        self.map.contains_key(k)
    }

    /// Hit path of the old `CacheSim::access`, reached only after the
    /// caller's own `contains` probe.
    fn access_resident(&mut self, k: VirtHugePage) {
        let slot = *self.map.get(&k).expect("resident");
        self.policy.on_hit(slot);
        self.hits += 1;
    }

    fn insert_cold(&mut self, k: VirtHugePage) -> Option<VirtHugePage> {
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim_slot = self.policy.choose_victim();
            let victim = self.keys[victim_slot].take().expect("occupied");
            self.policy.on_remove(victim_slot);
            self.map.remove(&victim);
            self.free.push(victim_slot);
            evicted = Some(victim);
        }
        let slot = self.free.pop().expect("free slot");
        self.keys[slot] = Some(k);
        self.map.insert(k, slot);
        self.policy.on_insert(slot);
        evicted
    }
}

/// The old fully-associative TLB: residency sim + separate values map,
/// with the triple-probe lookup (`contains` → `access` → `values.get`).
/// Counter fields replicate the seed's `TlbStats` bookkeeping so the
/// replica executes the same per-access work; only `hits` is read back.
struct LegacyTlb {
    sim: LegacyCacheSim,
    values: FxHashMap<VirtHugePage, u64>,
    hits: u64,
    #[allow(dead_code)]
    misses: u64,
    #[allow(dead_code)]
    inserts: u64,
    #[allow(dead_code)]
    evictions: u64,
}

impl LegacyTlb {
    fn new(entries: u64, kind: PolicyKind, seed: u64) -> Self {
        let cap = entries as usize;
        // The headline comparison is LRU, so LRU gets the fully faithful
        // seed policy (usize-link list); other kinds reuse the crate's
        // policies behind the same boxed-dispatch triple-probe structure.
        let policy: Box<dyn Policy> = match kind {
            PolicyKind::Lru => Box::new(LegacyLru {
                recency: LegacyList::new(cap),
            }),
            _ => make_policy(kind, cap, seed),
        };
        Self {
            sim: LegacyCacheSim::new(cap, policy),
            values: FxHashMap::default(),
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
        }
    }

    fn lookup(&mut self, u: VirtHugePage) -> Option<&u64> {
        if self.sim.contains(&u) {
            self.sim.access_resident(u);
            self.hits += 1;
            self.values.get(&u)
        } else {
            self.misses += 1;
            None
        }
    }

    fn insert(&mut self, u: VirtHugePage, value: u64) {
        assert!(!self.sim.contains(&u), "insert of resident TLB entry");
        self.inserts += 1;
        if let Some(victim) = self.sim.insert_cold(u) {
            self.evictions += 1;
            self.values.remove(&victim);
        }
        self.values.insert(u, value);
    }
}

// ---------------------------------------------------------------------------
// Variant drivers
// ---------------------------------------------------------------------------

/// One benchmarkable TLB instance: runs a full pass over a trace of
/// huge-page ids and reports cumulative hits afterwards.
trait Driver {
    fn pass(&mut self, trace: &[u64]);
    fn hits(&self) -> u64;
}

struct FullDriver<P: Policy>(Tlb<u64, P>);
impl<P: Policy> Driver for FullDriver<P> {
    fn pass(&mut self, trace: &[u64]) {
        for &p in trace {
            let u = VirtHugePage(p);
            if self.0.lookup(u).is_none() {
                self.0.insert(u, p);
            }
        }
    }
    fn hits(&self) -> u64 {
        self.0.stats().hits
    }
}

struct LegacyDriver(LegacyTlb);
impl Driver for LegacyDriver {
    fn pass(&mut self, trace: &[u64]) {
        for &p in trace {
            let u = VirtHugePage(p);
            if self.0.lookup(u).is_none() {
                self.0.insert(u, p);
            }
        }
    }
    fn hits(&self) -> u64 {
        self.0.hits
    }
}

struct SetAssocDriver(SetAssocTlb<u64>);
impl Driver for SetAssocDriver {
    fn pass(&mut self, trace: &[u64]) {
        for &p in trace {
            let u = VirtHugePage(p);
            if self.0.lookup(u).is_none() {
                self.0.insert(u, p);
            }
        }
    }
    fn hits(&self) -> u64 {
        self.0.stats().hits
    }
}

struct TwoLevelDriver<P: Policy>(TwoLevelTlb<u64, P>);
impl<P: Policy> Driver for TwoLevelDriver<P> {
    fn pass(&mut self, trace: &[u64]) {
        for &p in trace {
            self.0.access(VirtHugePage(p), || p);
        }
    }
    fn hits(&self) -> u64 {
        let s = self.0.stats();
        s.l1_hits + s.l2_hits
    }
}

struct SplitDriver<P: Policy>(SplitTlb<u64, P>);
impl<P: Policy> Driver for SplitDriver<P> {
    fn pass(&mut self, trace: &[u64]) {
        for &p in trace {
            let u = VirtHugePage(p);
            if self.0.lookup(u, 1).is_none() {
                self.0.insert(u, 1, p);
            }
        }
    }
    fn hits(&self) -> u64 {
        self.0.stats().hits
    }
}

struct RawCacheDriver<P: Policy>(CacheSim<u64, P, u64>, u64);
impl<P: Policy> Driver for RawCacheDriver<P> {
    fn pass(&mut self, trace: &[u64]) {
        for &p in trace {
            if self.0.access_if_present(&p).is_none() {
                self.0.insert_cold_with(p, p);
            }
        }
        self.1 = self.0.hits();
    }
    fn hits(&self) -> u64 {
        self.1
    }
}

/// The software-pipelined engine: the trace is fed through
/// `access_or_fill_batch_map` in [`atp_tlb::batch::LANES`]-wide steps. Same per-access
/// semantics as `FullDriver<Lru>` (pinned by the shared `hits`
/// checksum), different instruction schedule.
struct BatchedDriver(BatchTlb<u64>);
impl Driver for BatchedDriver {
    fn pass(&mut self, trace: &[u64]) {
        // Feed raw pages straight into the pipeline; the newtype wrap
        // happens per lane inside, with no staging copy out here.
        self.0
            .access_or_fill_batch_map(trace, VirtHugePage, |u| u.0);
    }
    fn hits(&self) -> u64 {
        self.0.stats().hits
    }
}

/// A named driver factory; factories build a *fresh* TLB per repetition
/// so every rep does identical work from a cold start.
type Variant = (&'static str, Box<dyn Fn() -> Box<dyn Driver>>);

/// The variant matrix.
fn variants() -> Vec<Variant> {
    fn mono<P: Policy + PolicyBuild + 'static>() -> Box<dyn Driver> {
        Box::new(FullDriver(Tlb::<u64, P>::monomorphic(TLB_ENTRIES, 0)))
    }
    fn any(kind: PolicyKind) -> Box<dyn Driver> {
        Box::new(FullDriver(Tlb::<u64, AnyPolicy>::new(TLB_ENTRIES, kind, 0)))
    }
    fn legacy(kind: PolicyKind) -> Box<dyn Driver> {
        Box::new(LegacyDriver(LegacyTlb::new(TLB_ENTRIES, kind, 0)))
    }
    // Fused/legacy/batched groups are adjacent so each rep round
    // measures the compared cells back-to-back — see
    // `gate::median_paired_ratio`.
    vec![
        ("full_lru_mono", Box::new(mono::<Lru>)),
        ("legacy_full_lru", Box::new(|| legacy(PolicyKind::Lru))),
        (
            "batched_full_lru",
            Box::new(|| Box::new(BatchedDriver(BatchTlb::lru(TLB_ENTRIES)))),
        ),
        (
            "full_lru_mono_l1",
            Box::new(|| Box::new(FullDriver(Tlb::<u64, Lru>::monomorphic(L1_TLB_ENTRIES, 0)))),
        ),
        (
            "legacy_full_lru_l1",
            Box::new(|| {
                Box::new(LegacyDriver(LegacyTlb::new(
                    L1_TLB_ENTRIES,
                    PolicyKind::Lru,
                    0,
                )))
            }),
        ),
        (
            "batched_full_lru_l1",
            Box::new(|| Box::new(BatchedDriver(BatchTlb::lru(L1_TLB_ENTRIES)))),
        ),
        ("full_fifo_mono", Box::new(mono::<Fifo>)),
        ("legacy_full_fifo", Box::new(|| legacy(PolicyKind::Fifo))),
        ("full_clock_mono", Box::new(mono::<Clock>)),
        ("legacy_full_clock", Box::new(|| legacy(PolicyKind::Clock))),
        ("full_sieve_mono", Box::new(mono::<Sieve>)),
        ("legacy_full_sieve", Box::new(|| legacy(PolicyKind::Sieve))),
        ("full_lru_any", Box::new(|| any(PolicyKind::Lru))),
        ("full_fifo_any", Box::new(|| any(PolicyKind::Fifo))),
        ("full_clock_any", Box::new(|| any(PolicyKind::Clock))),
        ("full_sieve_any", Box::new(|| any(PolicyKind::Sieve))),
        (
            "set_assoc_lru",
            Box::new(|| Box::new(SetAssocDriver(SetAssocTlb::new(192, 8, 7)))),
        ),
        (
            "two_level_lru_mono",
            Box::new(|| Box::new(TwoLevelDriver(TwoLevelTlb::<u64, Lru>::cascade_lake_lru(3)))),
        ),
        (
            "split_lru_mono",
            Box::new(|| {
                Box::new(SplitDriver(SplitTlb::<u64, Lru>::monomorphic(
                    &[(&[1], TLB_ENTRIES)],
                    0,
                )))
            }),
        ),
        (
            "raw_cachesim_lru",
            Box::new(|| {
                let cap = TLB_ENTRIES as usize;
                Box::new(RawCacheDriver(CacheSim::new(cap, Lru::new(cap)), 0))
            }),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

/// Deterministic traces of huge-page ids (base-page traces coarsened by
/// the 512-page huge-page factor).
///
/// `zipf_hot`'s working set (1200 huge pages) fits the 1536-entry TLB, so
/// after warmup it exercises the *pure hit path* — the cell the slot-arena
/// refactor targets. `zipf` overflows capacity (4096 huge pages) and mixes
/// in the eviction path; `seq` is a wrapping in-capacity scan; `graph500`
/// is the paper's irregular BFS workload.
fn traces(window: usize) -> Vec<(&'static str, Vec<u64>)> {
    let zipf_hot: Vec<u64> = Zipfian::new(1, 1200 * HUGE, 1.1)
        .take(window)
        .map(|VirtPage(p)| p / HUGE)
        .collect();
    // 48 huge pages: fits the 64-entry `*_l1` variants, so those cells are
    // a pure hit path with every structure L1-cache-resident.
    let zipf_l1: Vec<u64> = Zipfian::new(2, 48 * HUGE, 1.1)
        .take(window)
        .map(|VirtPage(p)| p / HUGE)
        .collect();
    let zipf: Vec<u64> = Zipfian::new(1, 4096 * HUGE, 1.1)
        .take(window)
        .map(|VirtPage(p)| p / HUGE)
        .collect();
    let seq: Vec<u64> = Sequential::new(1024 * HUGE)
        .take(window)
        .map(|VirtPage(p)| p / HUGE)
        .collect();
    let g500 = Graph500Trace::generate(&atp_workloads::Graph500Config::small(5));
    let graph_once: Vec<u64> = g500.iter().map(|VirtPage(p)| p / HUGE).collect();
    let graph: Vec<u64> = graph_once.iter().copied().cycle().take(window).collect();
    vec![
        ("zipf_hot", zipf_hot),
        ("zipf_l1", zipf_l1),
        ("zipf", zipf),
        ("seq", seq),
        ("graph500", graph),
    ]
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct Cell {
    id: String,
    variant: &'static str,
    trace: &'static str,
    accesses: usize,
    hits: u64,
    accesses_per_sec: f64,
    ns_per_access: f64,
    /// Per-rep timings in measurement order, for paired comparisons.
    rep_times: Vec<f64>,
}

/// One timed repetition of a cell: build a fresh TLB, run one untimed
/// warmup pass over the window to reach steady state, then time `rounds`
/// further passes. Returns the elapsed seconds and the driver's cumulative
/// hits (deterministic).
fn time_once(factory: &dyn Fn() -> Box<dyn Driver>, trace: &[u64], rounds: usize) -> (f64, u64) {
    let mut d = factory();
    d.pass(trace); // warmup: fill to steady state
    let t0 = Instant::now();
    for _ in 0..rounds {
        d.pass(trace);
    }
    (t0.elapsed().as_secs_f64(), d.hits())
}

/// Measures the whole matrix, *interleaving* repetitions across cells
/// (rep-major order) so slow machine phases — frequency scaling, noisy
/// neighbours — spread across every cell instead of sinking whichever one
/// they landed on. Each cell reports its median over `reps`.
fn measure_matrix(
    variants: &[Variant],
    traces: &[(&'static str, Vec<u64>)],
    reps: usize,
    rounds: usize,
) -> Vec<Cell> {
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); variants.len() * traces.len()];
    let mut hits: Vec<u64> = vec![0; variants.len() * traces.len()];
    // Traces outer, variants inner: adjacent variants (the fused/legacy
    // pairs) are measured back-to-back within each rep round.
    for _ in 0..reps {
        for (ti, (_, trace)) in traces.iter().enumerate() {
            for (vi, (_, factory)) in variants.iter().enumerate() {
                let cell = vi * traces.len() + ti;
                let (dt, h) = time_once(factory.as_ref(), trace, rounds);
                times[cell].push(dt);
                hits[cell] = h;
            }
        }
    }
    let mut cells = Vec::with_capacity(times.len());
    let mut cell = 0;
    for (name, _) in variants {
        for (trace_name, trace) in traces {
            let accesses = trace.len() * rounds;
            let rep_times = times[cell].clone();
            let ts = &mut times[cell];
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let median = ts[ts.len() / 2];
            cells.push(Cell {
                id: format!("{name}/{trace_name}"),
                variant: name,
                trace: trace_name,
                accesses,
                hits: hits[cell],
                accesses_per_sec: accesses as f64 / median,
                ns_per_access: median * 1e9 / accesses as f64,
                rep_times,
            });
            cell += 1;
        }
    }
    cells
}

/// The batched/fused pairs whose paired ratios are written to the JSON,
/// and the traces on which each pair is *enforced* by `--gate`: the
/// hit-dominated, irregular cells whose working set fits the TLB — the
/// regime the pipelined engine is built for (the paper's sweeps spend
/// nearly all their accesses there). The remaining traces are still
/// recorded, but as informational rows: a miss-dominated cell pays the
/// engine's O(ℓ) eviction scan, and the fully sequential trace is
/// breakeven by design (the fused core already speculates a strided
/// stream perfectly, so batching has no latency to hide). Both document
/// trade-offs rather than gating on them.
const GATE_PAIRS: [(&str, &str, &[&str]); 2] = [
    (
        "batched_full_lru",
        "full_lru_mono",
        &["zipf_hot", "zipf_l1", "graph500"],
    ),
    // Only zipf_l1's 48-page working set fits the 64-entry L1 cells.
    ("batched_full_lru_l1", "full_lru_mono_l1", &["zipf_l1"]),
];

/// Builds the [`GATE_PAIRS`] × traces paired-ratio rows from measured
/// cells. The paired cells sit near each other in the matrix and every
/// rep round measures both, so per-rep ratios compare like with like.
fn ratio_rows(cells: &[Cell], traces: &[(&'static str, Vec<u64>)]) -> Vec<RatioRow> {
    let mut rows = Vec::new();
    for (fast_name, slow_name, gated_traces) in GATE_PAIRS {
        for (tname, _) in traces {
            let find = |v: &str| cells.iter().find(|c| c.variant == v && &c.trace == tname);
            if let (Some(f), Some(s)) = (find(fast_name), find(slow_name)) {
                rows.push(RatioRow {
                    id: format!("{fast_name}_vs_{slow_name}/{tname}"),
                    fast: fast_name.to_string(),
                    slow: slow_name.to_string(),
                    trace: tname.to_string(),
                    ratio: gate::median_paired_ratio(&f.rep_times, &s.rep_times),
                    gated: gated_traces.contains(tname),
                });
            }
        }
    }
    rows
}

/// Prints every ratio row against `floor` and returns whether all gated
/// rows clear it. A set with no gated rows fails: a gate that found
/// nothing to check must not read as a pass.
fn run_gate(rows: &[RatioRow], floor: f64) -> bool {
    if !rows.iter().any(|r| r.gated) {
        println!("gate FAIL: no hotpath_paired_ratio rows to check");
        return false;
    }
    let failures = gate::gate_failures(rows, floor);
    for r in rows {
        let verdict = if failures.iter().any(|f| f.id == r.id) {
            "FAIL"
        } else if r.gated {
            "ok"
        } else {
            "info"
        };
        println!(
            "  gate {:48} {:>6.2}x (floor {floor:.2}x) {verdict}",
            r.id, r.ratio
        );
    }
    failures.is_empty()
}

// ---------------------------------------------------------------------------
// JSON out / baseline compare
// ---------------------------------------------------------------------------

/// Writes the matrix in the workspace-wide `atp-metrics-v1` schema (one
/// metric object per line), so the bench artifact is readable by the same
/// consumers as `atp simulate --metrics`.
fn write_json(path: &str, quick: bool, reps: usize, cells: &[Cell], ratios: &[RatioRow]) {
    let mut reg = atp_obs::MetricsRegistry::new();
    reg.set_meta("bench", "hotpath");
    reg.set_meta("quick", if quick { "true" } else { "false" });
    reg.set_meta("reps", &reps.to_string());
    reg.set_meta("tlb_entries", &TLB_ENTRIES.to_string());
    for c in cells {
        let labels = [
            ("id", c.id.as_str()),
            ("variant", c.variant),
            ("trace", c.trace),
        ];
        reg.counter(
            "hotpath_accesses",
            "timed accesses per repetition",
            &labels,
            c.accesses as u64,
        );
        reg.counter(
            "hotpath_hits",
            "cumulative TLB hits (deterministic semantics checksum)",
            &labels,
            c.hits,
        );
        reg.gauge(
            "hotpath_accesses_per_sec",
            "median throughput over reps",
            &labels,
            c.accesses_per_sec,
        );
        reg.gauge(
            "hotpath_ns_per_access",
            "median latency over reps",
            &labels,
            c.ns_per_access,
        );
    }
    for r in ratios {
        reg.gauge(
            "hotpath_paired_ratio",
            "median of per-rep slow/fast time ratios (speedup of fast over slow)",
            &[
                ("id", r.id.as_str()),
                ("fast", r.fast.as_str()),
                ("slow", r.slow.as_str()),
                ("trace", r.trace.as_str()),
                ("gated", if r.gated { "true" } else { "false" }),
            ],
            r.ratio,
        );
    }
    std::fs::write(path, reg.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// Reads `(id, accesses_per_sec)` pairs from a previous run's JSON.
/// Understands both the current `atp-metrics-v1` schema and the
/// pre-observability `atp-bench-hotpath-v1` format, so old committed
/// baselines keep working as `--baseline` inputs.
fn read_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let doc = atp_obs::json::parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
    let schema = doc.get("schema").and_then(|s| s.as_str()).unwrap_or("");
    let mut out = Vec::new();
    match schema {
        "atp-metrics-v1" => {
            for m in doc
                .get("metrics")
                .and_then(|m| m.as_arr())
                .into_iter()
                .flatten()
            {
                if m.get("name").and_then(|n| n.as_str()) != Some("hotpath_accesses_per_sec") {
                    continue;
                }
                let id = m
                    .get("labels")
                    .and_then(|l| l.get("id"))
                    .and_then(|i| i.as_str());
                let value = m.get("value").and_then(|v| v.as_f64());
                if let (Some(id), Some(v)) = (id, value) {
                    out.push((id.to_string(), v));
                }
            }
        }
        "atp-bench-hotpath-v1" => {
            for r in doc
                .get("results")
                .and_then(|r| r.as_arr())
                .into_iter()
                .flatten()
            {
                let id = r.get("id").and_then(|i| i.as_str());
                let value = r.get("accesses_per_sec").and_then(|v| v.as_f64());
                if let (Some(id), Some(v)) = (id, value) {
                    out.push((id.to_string(), v));
                }
            }
        }
        other => panic!("unknown baseline schema {other:?} in {path}"),
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline needs a path").clone());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone())
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let gate_floor = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .expect("--gate needs a floor")
            .parse::<f64>()
            .expect("--gate floor must be a number")
    });
    let gate_file = args
        .iter()
        .position(|a| a == "--gate-file")
        .map(|i| args.get(i + 1).expect("--gate-file needs a path").clone());

    // Re-gate a stored artifact without measuring anything: the ratio
    // rows already in the JSON are the verdict's only input, so the gate
    // logic itself can be pinned by tests on synthetic files.
    if let Some(path) = gate_file {
        let floor = gate_floor.expect("--gate-file requires --gate <floor>");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let rows = gate::read_ratio_rows(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        println!("gating {path} at {floor:.2}x:");
        if !run_gate(&rows, floor) {
            std::process::exit(1);
        }
        println!("gate OK");
        return;
    }

    let (rounds, reps) = if quick { (2, 3) } else { (8, 11) };
    let traces = traces(TRACE_WINDOW);
    let variants = variants();

    println!(
        "hotpath: {} variants × {} traces, {} accesses ({TRACE_WINDOW}-access \
         window × {rounds} rounds), median of {reps}",
        variants.len(),
        traces.len(),
        TRACE_WINDOW * rounds,
    );

    let cells = measure_matrix(&variants, &traces, reps, rounds);
    for cell in &cells {
        println!(
            "  {:28} {:>12.0} acc/s  ({:6.2} ns/access, {} hits)",
            cell.id, cell.accesses_per_sec, cell.ns_per_access, cell.hits
        );
    }

    // Headline ratios: fused monomorphized LRU vs the legacy replica at
    // both hardware sizes, paired per rep (each pair is adjacent in the
    // matrix, so its two cells are measured back-to-back).
    for (fused_name, legacy_name) in [
        ("full_lru_mono", "legacy_full_lru"),
        ("full_lru_mono_l1", "legacy_full_lru_l1"),
    ] {
        for (tname, _) in &traces {
            let fused = cells
                .iter()
                .find(|c| c.variant == fused_name && &c.trace == tname);
            let legacy = cells
                .iter()
                .find(|c| c.variant == legacy_name && &c.trace == tname);
            if let (Some(f), Some(l)) = (fused, legacy) {
                println!(
                    "speedup {fused_name} vs {legacy_name} on {tname}: {:.2}x",
                    gate::median_paired_ratio(&f.rep_times, &l.rep_times)
                );
            }
        }
    }

    // Batched/fused paired ratios — the rows `--gate` checks and the
    // JSON records.
    let ratios = ratio_rows(&cells, &traces);
    for r in &ratios {
        println!("paired ratio {}: {:.2}x", r.id, r.ratio);
    }

    if let Some(bpath) = baseline {
        let base = read_baseline(&bpath);
        println!("\ncomparison vs {bpath}:");
        for c in &cells {
            if let Some((_, old)) = base.iter().find(|(id, _)| *id == c.id) {
                let ratio = c.accesses_per_sec / old;
                println!(
                    "  {:28} {:>12.0} vs {:>12.0} acc/s  ({:+.1}%)",
                    c.id,
                    c.accesses_per_sec,
                    old,
                    (ratio - 1.0) * 100.0
                );
            } else {
                println!("  {:28} (new cell, no baseline)", c.id);
            }
        }
    }

    write_json(&out_path, quick, reps, &cells, &ratios);

    // Gate after writing: a failed gate still leaves the artifact on
    // disk for inspection.
    if let Some(floor) = gate_floor {
        println!("gating this run at {floor:.2}x:");
        if !run_gate(&ratios, floor) {
            std::process::exit(1);
        }
        println!("gate OK");
    }
}
