//! Reproduces **Figure 1a**: the bimodal uniform workload.
//!
//! Paper configuration: 99.99% of accesses uniform in a 1 GB hot region of
//! a 64 GB virtual address space; 16 GB cache; 1536-entry TLB; 100 M warmup
//! accesses + 100 M measured; huge-page size swept over 2^0..2^10.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin figure1a          # laptop scale
//! cargo run --release -p atp-bench --bin figure1a -- --paper
//! ```

use atp_bench::{figure1_table, Scale};
use atp_types::VirtPage;
use atp_workloads::Bimodal;

fn main() {
    let scale = Scale::from_args();
    let (total_pages, hot_pages, phys, tlb, warmup, measure) = match scale {
        // 64 GB VA / 1 GB hot / 16 GB cache, 100M + 100M.
        Scale::Paper => (
            1u64 << 24,
            1u64 << 18,
            1u64 << 22,
            1536,
            100_000_000,
            100_000_000,
        ),
        // Same ratios (64:1 VA:hot, 4:1 VA:cache), 1M + 1M accesses.
        Scale::Laptop => (
            1u64 << 19,
            1u64 << 13,
            1u64 << 17,
            1536,
            1_000_000,
            1_000_000,
        ),
    };
    let trace: Vec<VirtPage> = Bimodal::new(1, total_pages, hot_pages, 0.9999)
        .take((warmup + measure) as usize)
        .collect();
    figure1_table(
        "Figure 1a (bimodal uniform)",
        &trace,
        phys,
        tlb,
        warmup,
        measure,
    );
}
