//! **A-alloc** ablation — why Iceberg\[2\] and not Greedy\[d\] or one-choice?
//!
//! At an *equal physical budget* (same total slots per page of resident
//! data), sweep the load factor m/P and report paging failures per million
//! placements under sliding-window churn for:
//!
//! * one-choice with bins of the same size,
//! * Greedy\[2\] (footnote 3's empirically strong, unprovable contender),
//! * Iceberg\[2\] (front (1+γ)λ + back tier).
//!
//! The experiment shows where each scheme's failure cliff sits — the
//! provable-δ question the paper settles in Iceberg's favour.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin ablation_alloc [-- --paper]
//! ```

use atp_ballsbins::adversary::{Op, SlidingWindowAdversary};
use atp_bench::{tsv_header, tsv_row, Scale};
use atp_core::{GreedyAlloc, IcebergAlloc, OneChoiceAlloc, RamAllocator};
use atp_sim::sweep;
use atp_types::VirtPage;

fn churn_failures<A: RamAllocator>(alloc: &mut A, m: u64, ops: u64) -> u64 {
    let mut adv = SlidingWindowAdversary::new(m as usize);
    let mut failures = 0u64;
    let mut failed = std::collections::HashSet::new();
    for _ in 0..ops {
        match adv.next_op() {
            Op::Insert(v) => {
                if alloc.place(VirtPage(v)).is_err() {
                    failures += 1;
                    failed.insert(v);
                }
            }
            Op::Delete(v) => {
                if !failed.remove(&v) {
                    alloc.free(VirtPage(v));
                }
            }
        }
    }
    failures
}

fn main() {
    let scale = Scale::from_args();
    let (bins, bin_size, cycles): (u64, u32, u64) = match scale {
        Scale::Paper => (1 << 16, 24, 8),
        Scale::Laptop => (1 << 12, 24, 6),
    };
    let p = bins * bin_size as u64;
    println!("# A-alloc: bins={bins}, B={bin_size} (P={p} slots), sliding-window churn");
    println!("# failures per 1M placements at each load factor m/P");
    tsv_header(&["load_factor", "one_choice", "greedy2", "iceberg"]);

    let factors: Vec<f64> = vec![0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95];
    let rows = sweep(&factors, 0, |&f| {
        let m = (p as f64 * f) as u64;
        let ops = 2 * m * (cycles + 1);
        let per_million = |fails: u64| fails as f64 * 1e6 / (ops as f64 / 2.0);

        let mut oc = OneChoiceAlloc::with_geometry(bins, bin_size, 1);
        let oc_f = churn_failures(&mut oc, m, ops);

        let mut gr = GreedyAlloc::with_geometry(bins, bin_size, 2, 2);
        let gr_f = churn_failures(&mut gr, m, ops);

        // Iceberg with the same total B: front = B - back.
        let back = 8u32.min(bin_size / 3);
        let mut ib = IcebergAlloc::with_geometry(bins, bin_size - back, back, 3);
        let ib_f = churn_failures(&mut ib, m, ops);

        (f, per_million(oc_f), per_million(gr_f), per_million(ib_f))
    });
    for (f, oc, gr, ib) in rows {
        tsv_row(&[
            format!("{f:.2}"),
            format!("{oc:.1}"),
            format!("{gr:.1}"),
            format!("{ib:.1}"),
        ]);
    }
    println!("# expected: one-choice fails orders of magnitude earlier; greedy and iceberg");
    println!("# both stay near zero until ~0.9 — but only iceberg has the (1+o(1))λ proof.");
}
