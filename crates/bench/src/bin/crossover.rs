//! Reproduces **T-cross** — the Section 6 narrative quantified: "there is
//! no good choice for the huge page size that simultaneously attains low IO
//! cost and low TLB miss count". For several values of ε we report the
//! best classic huge-page size against the decoupled family:
//!
//! * `Z` — plain decoupling (chunk = 1): page-granular IOs, `hmax` coverage;
//! * `hybrid(c)` — the Section 8 extension: decoupled entries over
//!   physically contiguous chunks of `c` pages, coverage `hmax·c` at
//!   amplification `c` (≪ the `hmax·c` a classic huge page of equal
//!   coverage would pay).
//!
//! The decoupled family needs no per-workload tuning of `h`; the best
//! chunk is reported alongside the best classic size.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin crossover [-- --paper]
//! ```

use atp_bench::{classic_run, figure1_sizes, tsv_header, tsv_row, Scale};
use atp_core::{IcebergAlloc, IcebergParams};
use atp_memmgmt::decoupled::DecoupledConfig;
use atp_memmgmt::{DecoupledMm, HybridMm};
use atp_replacement::PolicyKind;
use atp_sim::sweep;
use atp_types::{CostModel, Costs, VirtPage};
use atp_workloads::{Bimodal, Graph500Config, Graph500Trace, ParetoWalk};

fn decoupled_run(
    trace: &[VirtPage],
    phys: u64,
    chunk: u64,
    tlb_entries: u64,
    warmup: u64,
    measure: u64,
) -> (String, Costs) {
    let params = IcebergParams::derive(phys / chunk);
    let cfg = DecoupledConfig {
        tlb_value_bits: 64,
        tlb_entries,
        tlb_policy: PolicyKind::Lru,
        resident_pages: params.max_resident,
        ram_policy: PolicyKind::Lru,
        seed: 7,
    };
    if chunk == 1 {
        let mut z = DecoupledMm::new(IcebergAlloc::new(&params, 7), cfg);
        let label = format!("Z(cov={})", z.coverage());
        (
            label,
            atp_sim::run(&mut z, trace.iter().copied(), warmup, measure).costs,
        )
    } else {
        let mut z = HybridMm::new(IcebergAlloc::new(&params, 7), cfg, chunk);
        let label = format!("hybrid(c={chunk},cov={})", z.coverage());
        (
            label,
            atp_sim::run(&mut z, trace.iter().copied(), warmup, measure).costs,
        )
    }
}

fn main() {
    let scale = Scale::from_args();
    let (phys, n, tlb_entries) = match scale {
        Scale::Paper => (1u64 << 22, 100_000_000usize, 1536u64),
        Scale::Laptop => (1u64 << 16, 1_500_000usize, 256u64),
    };
    let half = (n / 2) as u64;

    let g = Graph500Trace::generate(&Graph500Config {
        scale: if scale == Scale::Paper { 22 } else { 16 },
        edge_factor: 16,
        seed: 3,
        max_accesses: n,
    });
    let g_phys = (g.touched_pages() * 99 / 100).max(2048);
    let traces: Vec<(&str, Vec<VirtPage>, u64)> = vec![
        (
            "bimodal",
            Bimodal::scaled(1, phys * 4).take(n).collect(),
            phys,
        ),
        (
            "pareto-walk",
            ParetoWalk::new(2, phys * 2, 0.01).take(n).collect(),
            phys,
        ),
        ("graph500", g.iter().collect(), g_phys),
    ];

    tsv_header(&[
        "workload",
        "epsilon",
        "best_classic",
        "classic_cost",
        "best_decoupled",
        "decoupled_cost",
        "ratio",
    ]);

    for (name, trace, p) in &traces {
        let measure = n as u64 - half;
        let sizes = figure1_sizes();
        let classic_costs: Vec<(u64, Costs)> = sweep(&sizes, 0, |&h| {
            (h, classic_run(trace, h, *p, tlb_entries, half, measure))
        });
        let chunks = [1u64, 2, 4, 8];
        let decoupled_costs: Vec<(String, Costs)> = sweep(&chunks, 0, |&c| {
            decoupled_run(trace, *p, c, tlb_entries, half, measure)
        });

        for &eps in &[0.001f64, 0.01, 0.1] {
            let model = CostModel::new(eps);
            let (best_h, classic_cost) = classic_costs
                .iter()
                .map(|(h, c)| (*h, c.total(model)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("nonempty");
            let (best_d, dec_cost) = decoupled_costs
                .iter()
                .map(|(l, c)| (l.clone(), c.total(model)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("nonempty");
            tsv_row(&[
                name.to_string(),
                eps.to_string(),
                format!("h={best_h}"),
                format!("{classic_cost:.1}"),
                best_d,
                format!("{dec_cost:.1}"),
                format!("{:.2}", dec_cost / classic_cost),
            ]);
        }
    }
    println!("# ratio < 1: the untuned decoupled family beats the best-tuned classic h.");
    println!("# note Z runs with (1−δ)P resident pages (δ_eff ≈ 0.6 at laptop scale) while");
    println!("# classic enjoys all of P — the asymptotic δ = o(1) closes this gap as P grows.");
}
