//! Reproduces **Figure 1b**: the Pareto random graph walk.
//!
//! Paper configuration: 64 GB virtual address space, 32 GB cache, nodes
//! with logarithmic out-degree, edge destinations Pareto(α = 0.01);
//! 1536-entry TLB; 100 M + 100 M accesses.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin figure1b          # laptop scale
//! cargo run --release -p atp-bench --bin figure1b -- --paper
//! ```

use atp_bench::{figure1_table, Scale};
use atp_types::VirtPage;
use atp_workloads::ParetoWalk;

fn main() {
    let scale = Scale::from_args();
    let (total_pages, phys, tlb, warmup, measure) = match scale {
        // 64 GB VA / 32 GB cache.
        Scale::Paper => (1u64 << 24, 1u64 << 23, 1536, 100_000_000, 100_000_000),
        // Same 2:1 ratio.
        Scale::Laptop => (1u64 << 18, 1u64 << 17, 1536, 1_000_000, 1_000_000),
    };
    let trace: Vec<VirtPage> = ParetoWalk::new(2, total_pages, 0.01)
        .take((warmup + measure) as usize)
        .collect();
    figure1_table(
        "Figure 1b (Pareto random walk)",
        &trace,
        phys,
        tlb,
        warmup,
        measure,
    );
}
