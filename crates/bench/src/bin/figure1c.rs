//! Reproduces **Figure 1c**: the graph500 BFS trace.
//!
//! The paper replays ~5 M recorded accesses from a real graph500 run
//! (60 GB footprint, ~525 MB touched, 520 MB cache). We generate the trace
//! from an R-MAT graph + instrumented BFS (DESIGN.md "Substitutions") and
//! set the cache to 99% of the touched set, preserving the paper's
//! just-below-working-set pressure.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin figure1c          # laptop scale
//! cargo run --release -p atp-bench --bin figure1c -- --paper
//! ```

use atp_bench::{figure1_table, Scale};
use atp_types::VirtPage;
use atp_workloads::{Graph500Config, Graph500Trace};

fn main() {
    let scale = Scale::from_args();
    let (g500_scale, max_accesses) = match scale {
        // Scale 22 ≈ 4M vertices, 5M-access trace like the paper's.
        Scale::Paper => (22u32, 5_000_000usize),
        Scale::Laptop => (16u32, 2_000_000usize),
    };
    let g = Graph500Trace::generate(&Graph500Config {
        scale: g500_scale,
        edge_factor: 16,
        seed: 3,
        max_accesses,
    });
    eprintln!(
        "# graph500: {} vertices, {} edges, {} accesses, {} touched pages",
        g.vertices(),
        g.edges(),
        g.pages().len(),
        g.touched_pages()
    );
    let trace: Vec<VirtPage> = g.iter().collect();
    let phys = (g.touched_pages() * 99 / 100).max(2048);
    let half = trace.len() as u64 / 2;
    figure1_table(
        "Figure 1c (graph500 BFS)",
        &trace,
        phys,
        1536,
        half,
        trace.len() as u64 - half,
    );
}
