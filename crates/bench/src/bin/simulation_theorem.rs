//! Reproduces **T-thm4** — the Simulation Theorem (eq. 7) on all three
//! Figure-1 workloads: `C(Z) ≤ C_TLB(X) + C_IO(Y) + n/poly(P)`, with the
//! failure term measured.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin simulation_theorem [-- --paper]
//! ```

use atp_bench::{tsv_header, tsv_row, Scale};
use atp_core::{IcebergAlloc, IcebergParams};
use atp_memmgmt::decoupled::DecoupledConfig;
use atp_memmgmt::{DecoupledMm, MemoryManager, PagingOnlyMm, VirtualOnlyMm};
use atp_replacement::PolicyKind;
use atp_types::{CostModel, VirtPage};
use atp_workloads::{Bimodal, Graph500Config, Graph500Trace, ParetoWalk};

fn main() {
    let scale = Scale::from_args();
    let (phys, n, tlb_entries) = match scale {
        Scale::Paper => (1u64 << 22, 100_000_000usize, 1536u64),
        Scale::Laptop => (1u64 << 16, 2_000_000usize, 256u64),
    };
    let model = CostModel::new(0.01);
    let params = IcebergParams::derive(phys);

    let traces: Vec<(&str, Vec<VirtPage>)> = vec![
        ("bimodal", Bimodal::scaled(1, phys * 4).take(n).collect()),
        (
            "pareto-walk",
            ParetoWalk::new(2, phys * 2, 0.01).take(n).collect(),
        ),
        ("graph500", {
            let g = Graph500Trace::generate(&Graph500Config {
                scale: if scale == Scale::Paper { 22 } else { 16 },
                edge_factor: 16,
                seed: 3,
                max_accesses: n,
            });
            g.iter().collect()
        }),
    ];

    println!(
        "# T-thm4: ε = {}, P = {phys}, m = {} (δ_eff = {:.3}), ℓ = {tlb_entries}",
        model.epsilon, params.max_resident, params.delta_eff
    );
    tsv_header(&[
        "workload",
        "C(Z)",
        "C_TLB(X)",
        "C_IO(Y)",
        "X+Y",
        "slack_used",
        "failures",
        "holds",
    ]);

    for (name, trace) in &traces {
        let mut z = DecoupledMm::new(
            IcebergAlloc::new(&params, 11),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 11,
            },
        );
        let hmax = z.coverage();
        let mut x = VirtualOnlyMm::new(hmax, tlb_entries, PolicyKind::Lru, 11);
        let mut y = PagingOnlyMm::new(params.max_resident, PolicyKind::Lru, 11);
        for &p in trace {
            z.access(p);
            x.access(p);
            y.access(p);
        }
        let (cz, cx, cy) = (z.costs(), x.costs(), y.costs());
        let lhs = cz.total(model);
        let rhs = cx.tlb_cost(model) + cy.io_cost();
        tsv_row(&[
            name.to_string(),
            format!("{lhs:.1}"),
            format!("{:.1}", cx.tlb_cost(model)),
            format!("{:.1}", cy.io_cost()),
            format!("{rhs:.1}"),
            format!("{:.1}", (lhs - rhs).max(0.0)),
            cz.paging_failures.to_string(),
            (lhs <= rhs + trace.len() as f64 / phys as f64).to_string(),
        ]);
    }
}
