//! Reproduces **T-thm1 / T-thm3** — the zero-failure guarantees of
//! Theorems 1 and 3 at theory-derived parameters, and the code-size
//! separation (`Θ(log log P)` vs `Θ(log log log P)` bits per slot).
//!
//! For each P, both allocators are driven by an LRU-like sliding-window
//! churn at their supported resident bound `m` for many turnover cycles,
//! replicated over several independent seeds; we report geometry, bits per
//! code, achieved `hmax` (w = 64), effective δ, and observed paging
//! failures across all seeds (expected: 0).
//!
//! ```sh
//! cargo run --release -p atp-bench --bin decoupling_failures [-- --paper]
//! ```

use atp_ballsbins::adversary::{Op, SlidingWindowAdversary};
use atp_bench::{tsv_header, tsv_row, Scale};
use atp_core::{
    hmax_for, IcebergAlloc, IcebergParams, OneChoiceAlloc, OneChoiceParams, RamAllocator,
};
use atp_sim::sweep;
use atp_types::VirtPage;

const W: u32 = 64;

fn churn_failures<A: RamAllocator>(alloc: &mut A, m: u64, cycles: u64) -> u64 {
    let mut adv = SlidingWindowAdversary::new(m as usize);
    let mut failures = 0u64;
    let mut failed_pages = std::collections::HashSet::new();
    for _ in 0..(m * (cycles + 1)) * 2 {
        match adv.next_op() {
            Op::Insert(v) => {
                if alloc.place(VirtPage(v)).is_err() {
                    failures += 1;
                    failed_pages.insert(v);
                }
            }
            Op::Delete(v) => {
                if !failed_pages.remove(&v) {
                    alloc.free(VirtPage(v));
                }
            }
        }
    }
    failures
}

fn main() {
    let scale = Scale::from_args();
    let (shifts, cycles): (Vec<u32>, u64) = match scale {
        Scale::Paper => (vec![14, 16, 18, 20, 22, 24], 8),
        Scale::Laptop => (vec![14, 16, 18, 20], 4),
    };

    const SEEDS: u64 = 8;

    println!("# T-thm1: one-choice allocator at derived params (B = λ + 2.5√(λ ln n)); {SEEDS} seeds each");
    tsv_header(&[
        "P",
        "bins",
        "B",
        "bits",
        "hmax(w=64)",
        "delta_eff",
        "m",
        "failures(all seeds)",
    ]);
    let configs: Vec<(u32, u64)> = shifts
        .iter()
        .flat_map(|&s| (0..SEEDS).map(move |seed| (s, seed)))
        .collect();
    let rows = sweep(&configs, 0, |&(shift, seed)| {
        let p = 1u64 << shift;
        let params = OneChoiceParams::derive(p);
        let mut alloc = OneChoiceAlloc::new(&params, (shift as u64) * 1000 + seed);
        churn_failures(&mut alloc, params.max_resident, cycles)
    });
    for (i, &shift) in shifts.iter().enumerate() {
        let p = 1u64 << shift;
        let params = OneChoiceParams::derive(p);
        let failures: u64 = rows[i * SEEDS as usize..(i + 1) * SEEDS as usize]
            .iter()
            .sum();
        tsv_row(&[
            p.to_string(),
            params.bins.to_string(),
            params.bin_size.to_string(),
            params.bits_per_code.to_string(),
            hmax_for(W, params.bits_per_code).to_string(),
            format!("{:.3}", params.delta_eff),
            params.max_resident.to_string(),
            failures.to_string(),
        ]);
    }

    println!("\n# T-thm3: Iceberg[2] allocator at derived params (front (1+o(1))λ, back loglog n + O(1)); {SEEDS} seeds each");
    tsv_header(&[
        "P",
        "bins",
        "front",
        "back",
        "bits",
        "hmax(w=64)",
        "delta_eff",
        "m",
        "failures(all seeds)",
    ]);
    let rows = sweep(&configs, 0, |&(shift, seed)| {
        let p = 1u64 << shift;
        let params = IcebergParams::derive(p);
        let mut alloc = IcebergAlloc::new(&params, (shift as u64) * 2000 + seed);
        churn_failures(&mut alloc, params.max_resident, cycles)
    });
    for (i, &shift) in shifts.iter().enumerate() {
        let p = 1u64 << shift;
        let params = IcebergParams::derive(p);
        let failures: u64 = rows[i * SEEDS as usize..(i + 1) * SEEDS as usize]
            .iter()
            .sum();
        tsv_row(&[
            p.to_string(),
            params.bins.to_string(),
            params.front_cap.to_string(),
            params.back_cap.to_string(),
            params.bits_per_code.to_string(),
            hmax_for(W, params.bits_per_code).to_string(),
            format!("{:.3}", params.delta_eff),
            params.max_resident.to_string(),
            failures.to_string(),
        ]);
    }
    println!("# expected: zero failures in both tables; iceberg bits/code < one-choice bits/code,");
    println!(
        "# so iceberg hmax ≥ one-choice hmax — the Θ(w/logloglogP) vs Θ(w/loglogP) separation."
    );
}
