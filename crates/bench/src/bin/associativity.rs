//! Reproduces **T-assoc1** — Section 4's "difficulty of reducing
//! associativity" claim: with bin size B = 1 and k = 1 hash function,
//! inserting P distinct pages into P unit bins leaves ≈ P/e slots unused,
//! so any no-evict policy incurs ≥ (1/e − δ)P paging failures whp.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin associativity [-- --paper]
//! ```

use atp_bench::{tsv_header, tsv_row, Scale};
use atp_core::{OneChoiceAlloc, RamAllocator};
use atp_sim::sweep;
use atp_types::VirtPage;

fn main() {
    let scale = Scale::from_args();
    let shifts: Vec<u32> = match scale {
        Scale::Paper => vec![14, 16, 18, 20, 22, 24],
        Scale::Laptop => vec![12, 14, 16, 18, 20],
    };
    println!("# T-assoc1: B=1, k=1; P distinct insertions; failure fraction → 1/e ≈ 0.3679");
    tsv_header(&["P", "failures", "fraction", "abs_err_vs_1_over_e"]);
    let rows = sweep(&shifts, 0, |&shift| {
        let p = 1u64 << shift;
        let mut alloc = OneChoiceAlloc::with_geometry(p, 1, shift as u64);
        let mut failures = 0u64;
        for v in 0..p {
            if alloc.place(VirtPage(v)).is_err() {
                failures += 1;
            }
        }
        (p, failures)
    });
    for (p, failures) in rows {
        let frac = failures as f64 / p as f64;
        tsv_row(&[
            p.to_string(),
            failures.to_string(),
            format!("{frac:.4}"),
            format!("{:.4}", (frac - (-1.0f64).exp()).abs()),
        ]);
    }
}
