//! **T-w** — the Section 8 discussion, quantified: "even small increases in
//! w correspond to potentially large gains in TLB coverage (and, moreover,
//! these gains do not require the storage of additional keys!)".
//!
//! For each TLB-value width w, report the huge-page coverage `hmax` each
//! scheme achieves at P = 2^20 and P = 2^30 physical pages:
//!
//! * fully associative (classic): `⌈log₂(P+1)⌉` bits per page — the
//!   baseline where coverage grows only as Θ(w / log P);
//! * one-choice (Theorem 1): Θ(w / log log P);
//! * Iceberg\[2\] (Theorem 3): Θ(w / log log log P).
//!
//! ```sh
//! cargo run --release -p atp-bench --bin coverage_vs_w
//! ```

use atp_bench::{tsv_header, tsv_row};
use atp_core::params::bits_for;
use atp_core::{hmax_for, IcebergParams, OneChoiceParams};

fn main() {
    println!("# T-w: hmax (pages covered per TLB entry) as a function of w");
    tsv_header(&[
        "P",
        "w",
        "full_assoc_bits",
        "full_assoc_hmax",
        "one_choice_bits",
        "one_choice_hmax",
        "iceberg_bits",
        "iceberg_hmax",
    ]);
    for shift in [20u32, 30] {
        let p = 1u64 << shift;
        let fa_bits = bits_for(p + 1);
        let oc = OneChoiceParams::derive(p);
        let ib = IcebergParams::derive(p);
        for w in [32u32, 64, 128, 256, 512, 1024] {
            tsv_row(&[
                format!("2^{shift}"),
                w.to_string(),
                fa_bits.to_string(),
                hmax_for(w, fa_bits).to_string(),
                oc.bits_per_code.to_string(),
                hmax_for(w, oc.bits_per_code).to_string(),
                ib.bits_per_code.to_string(),
                hmax_for(w, ib.bits_per_code).to_string(),
            ]);
        }
    }
    println!("# classic TLB values (w=64) cover 1 huge page; decoupling covers 8 pages at the");
    println!("# same width, and a cache-line-wide value (w=512) covers 64–128 pages.");
}
