//! Reproduces the balls-and-bins load tables:
//!
//! * **T-load1** — eq. (5): one-choice max load in the three λ regimes
//!   (`λ = o(log n)`, `Θ(log n)`, `ω(log n)`);
//! * **T-load2** — eq. (6) vs Theorem 2: Greedy\[2\] vs Iceberg\[2\]
//!   overhead above λ under dynamic churn.
//!
//! ```sh
//! cargo run --release -p atp-bench --bin maxload [-- --paper]
//! ```

use atp_ballsbins::adversary::{drive, ChurnAdversary};
use atp_ballsbins::{Game, LoadSnapshot, Rule};
use atp_bench::{tsv_header, tsv_row, Scale};
use atp_sim::sweep;

fn run_game(seed: u64, n: u64, m: usize, rule: Rule, ops: u64) -> (LoadSnapshot, u32) {
    let mut game = Game::new(seed, n, rule);
    let mut adv = ChurnAdversary::new(seed ^ 0x5eed, m);
    drive(&mut game, ops, || adv.next_op());
    let peak = game.stats().max_load_ever;
    (LoadSnapshot::of(&game), peak)
}

fn main() {
    let scale = Scale::from_args();
    let (n, churn_factor) = match scale {
        Scale::Paper => (1u64 << 18, 16u64),
        Scale::Laptop => (1u64 << 14, 8u64),
    };
    let log_n = (n as f64).log2();

    println!("# T-load1: one-choice max load, n = {n} bins (eq. 5)");
    println!(
        "# theory: o(log n) → ~log n/log(log n/λ); Θ(log n) → Θ(λ); ω(log n) → λ+O(√(λ log n))"
    );
    tsv_header(&["regime", "lambda", "max", "p99", "overhead", "pred"]);
    let lambdas = [
        ("o(log n)", 1.0f64),
        ("o(log n)", (log_n.log2()).max(2.0)),
        ("Θ(log n)", log_n),
        ("ω(log n)", log_n * log_n.log2()),
        ("ω(log n)", log_n * log_n),
    ];
    let rows = sweep(&lambdas, 0, |&(regime, lambda)| {
        let m = (n as f64 * lambda) as usize;
        let (snap, _) = run_game(1, n, m, Rule::OneChoice, churn_factor * m as u64);
        let pred = if lambda >= log_n {
            lambda + (lambda * (n as f64).ln()).sqrt()
        } else {
            log_n / (log_n / lambda).log2().max(1.0)
        };
        (regime, lambda, snap, pred)
    });
    for (regime, lambda, snap, pred) in rows {
        tsv_row(&[
            regime.to_string(),
            format!("{lambda:.1}"),
            snap.max.to_string(),
            snap.p99.to_string(),
            format!("{:.1}", snap.overhead),
            format!("{pred:.1}"),
        ]);
    }

    println!("\n# T-load2: Greedy[2] vs Iceberg[2] overhead above λ, n = {n} (eq. 6 / Thm 2)");
    println!("# peak = highest load at ANY point during the run (the theorems' \"at any fixed");
    println!("# point in time\" quantifier); max = load at the end of the run.");
    tsv_header(&["rule", "lambda", "max", "peak", "overhead"]);
    let cases: Vec<(Rule, u64)> = [4u64, 8, 16, 32, 64]
        .iter()
        .flat_map(|&l| {
            vec![
                (Rule::OneChoice, l),
                (Rule::Greedy { d: 2 }, l),
                (
                    Rule::Iceberg {
                        front_cap: (l + l / 10 + 1) as u32,
                    },
                    l,
                ),
            ]
        })
        .collect();
    let rows = sweep(&cases, 0, |&(rule, lambda)| {
        let m = (n * lambda) as usize;
        let (snap, peak) = run_game(2, n, m, rule, churn_factor * m as u64);
        (rule, lambda, snap, peak)
    });
    for (rule, lambda, snap, peak) in rows {
        tsv_row(&[
            rule.name().to_string(),
            lambda.to_string(),
            snap.max.to_string(),
            peak.to_string(),
            format!("{:.1}", snap.overhead),
        ]);
    }
    println!("# iceberg overhead ≈ 0.1λ + log log n (provable); one-choice grows like √(λ log n).");
}
