//! Paired-ratio regression gate for the `hotpath` bench.
//!
//! The batched translation engine is only worth its complexity while it
//! stays measurably faster than the fused single-step path, so `hotpath`
//! records `hotpath_paired_ratio` gauges — the median of per-repetition
//! slow/fast time ratios, where pairing per rep round cancels the
//! machine-throughput drift a ratio of independent medians would soak up
//! — and this module turns a set of those rows into a pass/fail verdict:
//! every batched/fused ratio must clear a floor.
//!
//! `hotpath --gate <floor>` gates the run it just measured;
//! `hotpath --gate-file <path>` re-gates a stored JSON without measuring
//! anything, which is what the meta-test in `tests/gate.rs` pins against
//! synthetic baseline files.

use atp_obs::json;

/// One paired-ratio row from a hotpath metrics file: engine `fast`
/// against reference `slow` on `trace`, as the median of per-rep time
/// ratios (`> 1` means `fast` won).
#[derive(Clone, Debug, PartialEq)]
pub struct RatioRow {
    /// Row id, `"<fast>_vs_<slow>/<trace>"`.
    pub id: String,
    /// Variant name of the engine under test.
    pub fast: String,
    /// Variant name of the paired reference engine.
    pub slow: String,
    /// Trace name.
    pub trace: String,
    /// Median paired speedup of `fast` over `slow`.
    pub ratio: f64,
    /// Whether the row is enforced by the gate. Non-gated rows are
    /// recorded for the trajectory but carry no pass/fail weight — the
    /// batched engine trades its O(ℓ) eviction scan for the list-free
    /// hit path, so miss-dominated cells document the trade-off instead
    /// of gating on it.
    pub gated: bool,
}

/// Speedup of `fast` over `slow` as the *median of per-repetition
/// ratios*. Entry `i` of each slice must come from the same measurement
/// round, so each ratio compares timings from the same machine phase;
/// the median of those paired ratios is robust to frequency scaling and
/// noisy neighbours in a way a ratio of medians is not.
///
/// # Panics
/// Panics if the slices are empty, have different lengths, or produce a
/// non-finite ratio.
pub fn median_paired_ratio(fast_times: &[f64], slow_times: &[f64]) -> f64 {
    assert_eq!(fast_times.len(), slow_times.len(), "unpaired repetitions");
    assert!(!fast_times.is_empty(), "no repetitions to compare");
    let mut ratios: Vec<f64> = slow_times
        .iter()
        .zip(fast_times)
        .map(|(s, f)| s / f)
        .collect();
    ratios.sort_by(|a, b| {
        // atp-lint: allow(unwrap-policy, reason = "documented panic: ratios of positive timings are finite")
        a.partial_cmp(b).expect("finite ratios")
    });
    ratios[ratios.len() / 2]
}

/// Extracts every `hotpath_paired_ratio` gauge from an `atp-metrics-v1`
/// document. Returns an error (never panics) on malformed input so the
/// gate can distinguish "no ratio rows" from "not a metrics file".
pub fn read_ratio_rows(text: &str) -> Result<Vec<RatioRow>, String> {
    let doc = json::parse(text).map_err(|e| format!("parsing metrics JSON: {e}"))?;
    let schema = doc.get("schema").and_then(|s| s.as_str()).unwrap_or("");
    if schema != "atp-metrics-v1" {
        return Err(format!("expected atp-metrics-v1 schema, found {schema:?}"));
    }
    let mut out = Vec::new();
    for m in doc
        .get("metrics")
        .and_then(|m| m.as_arr())
        .into_iter()
        .flatten()
    {
        if m.get("name").and_then(|n| n.as_str()) != Some("hotpath_paired_ratio") {
            continue;
        }
        let label = |key: &str| {
            m.get("labels")
                .and_then(|l| l.get(key))
                .and_then(|v| v.as_str())
                .map(str::to_string)
        };
        let (Some(id), Some(fast), Some(slow), Some(trace)) =
            (label("id"), label("fast"), label("slow"), label("trace"))
        else {
            return Err(format!(
                "hotpath_paired_ratio row {} is missing id/fast/slow/trace labels",
                out.len()
            ));
        };
        let Some(ratio) = m.get("value").and_then(|v| v.as_f64()) else {
            return Err(format!(
                "hotpath_paired_ratio row {id} has no numeric value"
            ));
        };
        // Absent label means gated: a baseline that forgot to scope its
        // rows gets the strict reading, not a free pass.
        let gated = label("gated").is_none_or(|g| g != "false");
        out.push(RatioRow {
            id,
            fast,
            slow,
            trace,
            ratio,
            gated,
        });
    }
    Ok(out)
}

/// Gated rows whose ratio fails to clear `floor`, in file order; empty
/// means the gate passes. Non-gated rows are informational and never
/// fail. Non-finite ratios always fail (a NaN speedup is a broken
/// measurement, not a pass).
pub fn gate_failures(rows: &[RatioRow], floor: f64) -> Vec<&RatioRow> {
    rows.iter()
        .filter(|r| r.gated && (r.ratio.is_nan() || r.ratio < floor))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_obs::MetricsRegistry;

    fn row(id: &str, ratio: f64) -> RatioRow {
        RatioRow {
            id: id.to_string(),
            fast: "batched_full_lru".to_string(),
            slow: "full_lru_mono".to_string(),
            trace: id.rsplit('/').next().unwrap_or("t").to_string(),
            ratio,
            gated: true,
        }
    }

    #[test]
    fn median_pairs_reps_before_taking_the_median() {
        // Rep 2 is globally 10x slower (machine phase); paired ratios are
        // unaffected, while a ratio of medians would wander.
        let fast = [1.0, 2.0, 10.0];
        let slow = [2.0, 4.0, 20.0];
        assert_eq!(median_paired_ratio(&fast, &slow), 2.0);
    }

    #[test]
    fn median_is_positional_for_odd_counts() {
        let fast = [1.0, 1.0, 1.0, 1.0, 1.0];
        let slow = [0.5, 1.0, 3.0, 2.0, 9.0];
        assert_eq!(median_paired_ratio(&fast, &slow), 2.0);
    }

    #[test]
    #[should_panic(expected = "unpaired repetitions")]
    fn mismatched_rep_counts_panic() {
        median_paired_ratio(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn gate_passes_at_and_above_the_floor() {
        let rows = [row("a/zipf", 1.5), row("b/seq", 1.51)];
        assert!(gate_failures(&rows, 1.5).is_empty());
    }

    #[test]
    fn gate_reports_every_row_below_the_floor() {
        let rows = [row("a/zipf", 1.49), row("b/seq", 2.0), row("c/g", 0.4)];
        let bad: Vec<&str> = gate_failures(&rows, 1.5)
            .iter()
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(bad, ["a/zipf", "c/g"]);
    }

    #[test]
    fn non_gated_rows_never_fail() {
        let mut slow = row("batched_full_lru_vs_full_lru_mono/zipf", 0.2);
        slow.gated = false;
        let rows = [slow, row("batched_full_lru_vs_full_lru_mono/zipf_hot", 1.9)];
        assert!(
            gate_failures(&rows, 1.5).is_empty(),
            "informational rows carry no pass/fail weight"
        );
    }

    #[test]
    fn non_finite_ratios_fail_the_gate() {
        let rows = [row("a/zipf", f64::NAN), row("b/seq", f64::INFINITY)];
        let bad = gate_failures(&rows, 0.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id, "a/zipf");
    }

    #[test]
    fn ratio_rows_round_trip_through_the_metrics_schema() {
        let mut reg = MetricsRegistry::new();
        reg.set_meta("bench", "hotpath");
        reg.gauge(
            "hotpath_accesses_per_sec",
            "decoy: not a ratio row",
            &[("id", "full_lru_mono/zipf")],
            1e8,
        );
        reg.gauge(
            "hotpath_paired_ratio",
            "median paired speedup",
            &[
                ("id", "batched_full_lru_vs_full_lru_mono/graph500"),
                ("fast", "batched_full_lru"),
                ("slow", "full_lru_mono"),
                ("trace", "graph500"),
            ],
            1.75,
        );
        reg.gauge(
            "hotpath_paired_ratio",
            "informational miss-heavy cell",
            &[
                ("id", "batched_full_lru_vs_full_lru_mono/zipf"),
                ("fast", "batched_full_lru"),
                ("slow", "full_lru_mono"),
                ("trace", "zipf"),
                ("gated", "false"),
            ],
            0.3,
        );
        let rows = read_ratio_rows(&reg.to_json()).expect("well-formed");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "batched_full_lru_vs_full_lru_mono/graph500");
        assert_eq!(rows[0].fast, "batched_full_lru");
        assert_eq!(rows[0].slow, "full_lru_mono");
        assert_eq!(rows[0].trace, "graph500");
        assert_eq!(rows[0].ratio, 1.75);
        assert!(rows[0].gated, "absent gated label means enforced");
        assert!(!rows[1].gated, "explicit gated=false is informational");
    }

    #[test]
    fn wrong_schema_is_an_error_not_a_pass() {
        let err = read_ratio_rows(r#"{"schema":"atp-bench-hotpath-v1"}"#).unwrap_err();
        assert!(err.contains("atp-metrics-v1"), "got: {err}");
    }

    #[test]
    fn ratio_row_without_labels_is_an_error() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("hotpath_paired_ratio", "bad row", &[("id", "x")], 1.0);
        let err = read_ratio_rows(&reg.to_json()).unwrap_err();
        assert!(err.contains("missing"), "got: {err}");
    }
}
