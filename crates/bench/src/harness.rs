//! Minimal in-tree microbenchmark harness.
//!
//! Offline replacement for the `criterion` API subset the bench targets
//! use: named groups, per-benchmark samples, element throughput, and the
//! `criterion_group!`/`criterion_main!` entry points. Results print as one
//! line per benchmark (median over samples, min–max spread, throughput).
//!
//! This intentionally skips criterion's statistical machinery (outlier
//! rejection, regression baselines, HTML reports): the repo's benches are
//! coarse simulator-throughput tracks where a median over a handful of
//! samples is plenty, and the workspace must build with no network access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness configured from `std::env::args` (first free
    /// argument is a substring filter; flags are ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (trace accesses, operations, …) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing sample/throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{id}", self.name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warmup pass, then the timed samples.
        for i in 0..=self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            routine(&mut b);
            assert!(b.iters > 0, "benchmark {full} never called Bencher::iter");
            if i > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!(", {}/s", si(n as f64 / median, "elem")),
            Some(Throughput::Bytes(n)) => format!(", {}/s", si(n as f64 / median, "B")),
            None => String::new(),
        };
        println!(
            "{full:<48} {:>10} [{} .. {}]{rate}",
            fmt_time(median),
            fmt_time(samples[0]),
            // atp-lint: allow(unwrap-policy, reason = "invariant: the measurement loop always records at least one sample")
            fmt_time(*samples.last().expect("nonempty")),
        );
    }
}

/// Timing handle: call [`Bencher::iter`] with the routine to measure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `f` (accumulates if called repeatedly).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Declares a bench entry function running each registered bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::from_args();
            $( $f(&mut c); )+
        }
    };
}

/// Declares `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("lru").id, "lru");
    }

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("keep".into()),
        };
        let mut keep_calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("keep_me", |b| {
            keep_calls += 1;
            b.iter(|| 1 + 1);
        });
        group.bench_with_input(BenchmarkId::new("keep", 7), &7u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("skipped", |_b| {
            unreachable!("filter must skip this");
        });
        group.finish();
        // sample_size 2 plus one warmup pass.
        assert_eq!(keep_calls, 3);
    }
}
