//! Meta-test for the hotpath paired-ratio regression gate: pins the
//! `--gate <floor> --gate-file <path>` verdict of the *binary* on
//! synthetic `atp-metrics-v1` baseline files, so the exit-code contract
//! CI and developers rely on cannot drift from the library logic.

use std::path::PathBuf;
use std::process::Command;

use atp_bench::gate::{gate_failures, read_ratio_rows, RatioRow};
use atp_obs::MetricsRegistry;

/// Writes a synthetic hotpath metrics file with the given
/// `(fast, slow, trace, ratio)` rows and returns its path.
fn write_baseline(name: &str, rows: &[(&str, &str, &str, f64)]) -> PathBuf {
    let mut reg = MetricsRegistry::new();
    reg.set_meta("bench", "hotpath");
    // A plausible throughput row, to check the gate ignores non-ratio
    // metrics instead of tripping on them.
    reg.gauge(
        "hotpath_accesses_per_sec",
        "median throughput over reps",
        &[("id", "full_lru_mono/graph500")],
        1.5e8,
    );
    for &(fast, slow, trace, ratio) in rows {
        reg.gauge(
            "hotpath_paired_ratio",
            "median of per-rep slow/fast time ratios",
            &[
                ("id", &format!("{fast}_vs_{slow}/{trace}")),
                ("fast", fast),
                ("slow", slow),
                ("trace", trace),
            ],
            ratio,
        );
    }
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::write(&path, reg.to_json()).expect("write synthetic baseline");
    path
}

/// Runs the hotpath binary with `args` and returns (success, stdout).
fn run_hotpath(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hotpath"))
        .args(args)
        .output()
        .expect("spawn hotpath");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn gate_passes_a_healthy_baseline() {
    let path = write_baseline(
        "gate_healthy.json",
        &[
            ("batched_full_lru", "full_lru_mono", "graph500", 1.8),
            ("batched_full_lru", "full_lru_mono", "zipf_hot", 1.6),
            ("batched_full_lru_l1", "full_lru_mono_l1", "graph500", 1.5),
        ],
    );
    let (ok, out) = run_hotpath(&[
        "--gate",
        "1.5",
        "--gate-file",
        path.to_str().expect("utf-8"),
    ]);
    assert!(ok, "healthy baseline must pass the gate:\n{out}");
    assert!(out.contains("gate OK"), "{out}");
    assert!(
        !out.contains("FAIL"),
        "no row should be marked failing:\n{out}"
    );
}

#[test]
fn gate_fails_when_any_ratio_is_below_the_floor() {
    let path = write_baseline(
        "gate_regressed.json",
        &[
            ("batched_full_lru", "full_lru_mono", "graph500", 1.8),
            ("batched_full_lru_l1", "full_lru_mono_l1", "seq", 1.2),
        ],
    );
    let (ok, out) = run_hotpath(&[
        "--gate",
        "1.5",
        "--gate-file",
        path.to_str().expect("utf-8"),
    ]);
    assert!(!ok, "a regressed row must fail the gate:\n{out}");
    assert!(
        out.contains("batched_full_lru_l1_vs_full_lru_mono_l1/seq") && out.contains("FAIL"),
        "verdict must name the regressed row:\n{out}"
    );
    assert!(
        !out.contains("gate OK"),
        "a failing gate must not print the pass banner:\n{out}"
    );
}

#[test]
fn gate_verdict_is_exact_at_the_floor() {
    // >= floor passes: 1.5 at a 1.5 floor is not a regression.
    let path = write_baseline(
        "gate_boundary.json",
        &[("batched_full_lru", "full_lru_mono", "graph500", 1.5)],
    );
    let (ok, out) = run_hotpath(&[
        "--gate",
        "1.5",
        "--gate-file",
        path.to_str().expect("utf-8"),
    ]);
    assert!(ok, "ratio equal to the floor must pass:\n{out}");
}

#[test]
fn non_gated_rows_inform_but_never_fail_the_binary_gate() {
    let mut reg = MetricsRegistry::new();
    reg.gauge(
        "hotpath_paired_ratio",
        "enforced row",
        &[
            ("id", "batched_full_lru_vs_full_lru_mono/graph500"),
            ("fast", "batched_full_lru"),
            ("slow", "full_lru_mono"),
            ("trace", "graph500"),
            ("gated", "true"),
        ],
        1.8,
    );
    reg.gauge(
        "hotpath_paired_ratio",
        "informational miss-heavy row",
        &[
            ("id", "batched_full_lru_vs_full_lru_mono/zipf"),
            ("fast", "batched_full_lru"),
            ("slow", "full_lru_mono"),
            ("trace", "zipf"),
            ("gated", "false"),
        ],
        0.2,
    );
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("gate_info_rows.json");
    std::fs::write(&path, reg.to_json()).expect("write synthetic baseline");
    let (ok, out) = run_hotpath(&[
        "--gate",
        "1.5",
        "--gate-file",
        path.to_str().expect("utf-8"),
    ]);
    assert!(
        ok,
        "an informational row below the floor must not fail:\n{out}"
    );
    assert!(
        out.contains("info"),
        "non-gated rows are labelled info:\n{out}"
    );
}

#[test]
fn gate_fails_on_a_file_with_no_ratio_rows() {
    let path = write_baseline("gate_empty.json", &[]);
    let (ok, out) = run_hotpath(&[
        "--gate",
        "1.5",
        "--gate-file",
        path.to_str().expect("utf-8"),
    ]);
    assert!(!ok, "nothing to check must not read as a pass:\n{out}");
    assert!(out.contains("no hotpath_paired_ratio rows"), "{out}");
}

#[test]
fn gate_file_without_a_floor_is_an_error() {
    let path = write_baseline(
        "gate_no_floor.json",
        &[("batched_full_lru", "full_lru_mono", "graph500", 9.0)],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_hotpath"))
        .args(["--gate-file", path.to_str().expect("utf-8")])
        .output()
        .expect("spawn hotpath");
    assert!(
        !out.status.success(),
        "--gate-file without --gate must be rejected"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("requires --gate"), "{err}");
}

#[test]
fn binary_verdict_matches_the_library_on_the_same_file() {
    let rows_spec: &[(&str, &str, &str, f64)] = &[
        ("batched_full_lru", "full_lru_mono", "graph500", 1.44),
        ("batched_full_lru", "full_lru_mono", "zipf", 1.62),
    ];
    let path = write_baseline("gate_crosscheck.json", rows_spec);
    let text = std::fs::read_to_string(&path).expect("read back");
    let rows: Vec<RatioRow> = read_ratio_rows(&text).expect("well-formed");
    assert_eq!(rows.len(), rows_spec.len());
    let lib_fails = gate_failures(&rows, 1.5);
    assert_eq!(lib_fails.len(), 1, "library says exactly one regression");
    let (ok, out) = run_hotpath(&[
        "--gate",
        "1.5",
        "--gate-file",
        path.to_str().expect("utf-8"),
    ]);
    assert!(!ok, "binary must agree with the library verdict:\n{out}");
    assert!(out.contains(lib_fails[0].id.as_str()), "{out}");
}
