//! Microbenches for the replacement-policy substrate: per-access cost
//! of each policy on a skewed trace, plus offline OPT.

use atp_bench::harness::{BenchmarkId, Criterion, Throughput};
use atp_bench::{criterion_group, criterion_main};
use atp_replacement::{make_policy, opt::opt_misses, CacheSim, PolicyKind};
use atp_workloads::Zipfian;

const N: usize = 200_000;
const CAP: usize = 1 << 10;

fn bench_policies(c: &mut Criterion) {
    let trace: Vec<u64> = Zipfian::new(1, 1 << 14, 1.0).take(N).map(|p| p.0).collect();
    let mut group = c.benchmark_group("policy_access");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut sim = CacheSim::new(CAP, make_policy(kind, CAP, 3));
                let mut misses = 0u64;
                for &k in &trace {
                    misses += u64::from(!sim.access(k).is_hit());
                }
                misses
            });
        });
    }
    group.bench_function("opt_offline", |b| {
        b.iter(|| opt_misses(&trace, CAP).misses);
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
