//! Microbenches for the multicore extension (A-shoot ablation):
//! aggregate throughput and shootdown overhead as core count grows over a
//! fixed total workload.

use atp_bench::harness::{BenchmarkId, Criterion, Throughput};
use atp_bench::{criterion_group, criterion_main};
use atp_replacement::PolicyKind;
use atp_sim::{run_multicore, MulticoreConfig};
use atp_types::VirtPage;
use atp_workloads::Zipfian;

const TOTAL: usize = 120_000;

fn bench_scaling(c: &mut Criterion) {
    let whole: Vec<VirtPage> = Zipfian::new(1, 1 << 13, 1.0).take(TOTAL).collect();
    let mut group = c.benchmark_group("multicore_shootdowns");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL as u64));
    for cores in [1usize, 2, 4, 8] {
        let per = TOTAL / cores;
        let traces: Vec<Vec<VirtPage>> =
            whole.chunks(per).take(cores).map(|c| c.to_vec()).collect();
        let cfg = MulticoreConfig {
            cores,
            huge_pages: 4,
            phys_pages: 1 << 11,
            tlb_entries: 64,
            policy: PolicyKind::Lru,
            seed: 7,
        };
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cfg, |b, cfg| {
            b.iter(|| run_multicore(cfg, &traces).shootdown_invalidations);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
