//! Microbenches for workload generation throughput — trace generation
//! must never be the bottleneck of a 100 M-access paper-scale run.

use atp_bench::harness::{Criterion, Throughput};
use atp_bench::{criterion_group, criterion_main};
use atp_types::VirtPage;
use atp_workloads::{Bimodal, Gups, ParetoWalk, Sequential, Stencil2d, Zipfian};

const N: usize = 500_000;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_gen");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    fn drain(it: impl Iterator<Item = VirtPage>) -> u64 {
        it.take(N).map(|p| p.0).fold(0, u64::wrapping_add)
    }

    group.bench_function("bimodal", |b| b.iter(|| drain(Bimodal::scaled(1, 1 << 20))));
    group.bench_function("pareto_walk", |b| {
        b.iter(|| drain(ParetoWalk::new(2, 1 << 20, 0.01)))
    });
    group.bench_function("zipf", |b| b.iter(|| drain(Zipfian::new(3, 1 << 20, 1.0))));
    group.bench_function("gups", |b| b.iter(|| drain(Gups::new(4, 1 << 18, 1 << 8))));
    group.bench_function("stencil2d", |b| {
        b.iter(|| drain(Stencil2d::new(1024, 1024, 32)))
    });
    group.bench_function("sequential", |b| b.iter(|| drain(Sequential::new(1 << 20))));
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
