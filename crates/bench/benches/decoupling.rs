//! Microbenches for the core contribution: allocator placement
//! throughput, TLB-value encode/decode, and the full decoupled manager's
//! per-access cost (the "constant-time scheme" claim, measured).

use atp_bench::harness::{BenchmarkId, Criterion, Throughput};
use atp_bench::{criterion_group, criterion_main};
use atp_core::{
    FullyAssociativeAlloc, IcebergAlloc, OneChoiceAlloc, RamAllocator, SlotCode, TlbValue,
};
use atp_memmgmt::decoupled::DecoupledConfig;
use atp_memmgmt::{DecoupledMm, MemoryManager};
use atp_replacement::PolicyKind;
use atp_types::VirtPage;
use atp_workloads::Zipfian;

const OPS: u64 = 100_000;

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator_churn");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS));

    fn churn<A: RamAllocator>(mut alloc: A, m: u64) -> u64 {
        let mut placed = std::collections::VecDeque::new();
        let mut failures = 0;
        for v in 0..OPS {
            if placed.len() as u64 >= m {
                let old: u64 = placed.pop_front().expect("nonempty");
                alloc.free(VirtPage(old));
            }
            if alloc.place(VirtPage(v)).is_err() {
                failures += 1;
            }
            placed.push_back(v);
        }
        failures
    }

    group.bench_function("fully_associative", |b| {
        b.iter(|| churn(FullyAssociativeAlloc::new(1 << 14), 1 << 13))
    });
    group.bench_function("one_choice", |b| {
        b.iter(|| churn(OneChoiceAlloc::with_geometry(1 << 9, 64, 1), 1 << 13))
    });
    group.bench_function("iceberg", |b| {
        b.iter(|| churn(IcebergAlloc::with_geometry(1 << 10, 12, 6, 1), 1 << 13))
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_value");
    group.throughput(Throughput::Elements(1024));
    for bits in [5u32, 7, 12] {
        group.bench_with_input(BenchmarkId::new("set_get", bits), &bits, |b, &bits| {
            let count = (64 / bits).max(1);
            b.iter(|| {
                let mut v = TlbValue::new(count, bits);
                let mut acc = 0u32;
                for round in 0..1024u32 {
                    let i = round % count;
                    v.set(i, SlotCode(round % (1u32 << bits.min(31))));
                    acc ^= v.get(i).0;
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_decoupled_access(c: &mut Criterion) {
    let trace: Vec<VirtPage> = Zipfian::new(3, 1 << 16, 1.0).take(OPS as usize).collect();
    let mut group = c.benchmark_group("decoupled_manager");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("zipf_access", |b| {
        b.iter(|| {
            let mut z = DecoupledMm::new(
                IcebergAlloc::with_geometry(1 << 10, 12, 6, 7),
                DecoupledConfig {
                    tlb_value_bits: 64,
                    tlb_entries: 256,
                    tlb_policy: PolicyKind::Lru,
                    resident_pages: 12 * (1 << 10),
                    ram_policy: PolicyKind::Lru,
                    seed: 7,
                },
            );
            for &p in &trace {
                z.access(p);
            }
            z.costs()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_allocators,
    bench_encoding,
    bench_decoupled_access
);
criterion_main!(benches);
