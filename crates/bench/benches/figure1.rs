//! Microbenches over the Figure-1 pipeline (scaled): simulator
//! throughput for each workload × manager combination. The *tables* the
//! paper plots come from the `bin/figure1*` reproducers; these benches
//! track the library's own performance so regressions in the simulator
//! show up in `cargo bench`.

use atp_bench::classic_run;
use atp_bench::harness::{BenchmarkId, Criterion, Throughput};
use atp_bench::{criterion_group, criterion_main};
use atp_core::{IcebergAlloc, IcebergParams};
use atp_memmgmt::decoupled::DecoupledConfig;
use atp_memmgmt::{DecoupledMm, MemoryManager};
use atp_replacement::PolicyKind;
use atp_types::VirtPage;
use atp_workloads::{Bimodal, Graph500Config, Graph500Trace, ParetoWalk};

const PHYS: u64 = 1 << 15;
const N: usize = 200_000;

fn traces() -> Vec<(&'static str, Vec<VirtPage>)> {
    vec![
        ("bimodal", Bimodal::scaled(1, PHYS * 4).take(N).collect()),
        (
            "pareto_walk",
            ParetoWalk::new(2, PHYS * 2, 0.01).take(N).collect(),
        ),
        ("graph500", {
            Graph500Trace::generate(&Graph500Config {
                scale: 14,
                edge_factor: 16,
                seed: 3,
                max_accesses: N,
            })
            .iter()
            .collect()
        }),
    ]
}

fn bench_figure1(c: &mut Criterion) {
    let traces = traces();
    let mut group = c.benchmark_group("figure1");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    for (name, trace) in &traces {
        for h in [1u64, 64] {
            group.bench_with_input(
                BenchmarkId::new(format!("classic_h{h}"), name),
                trace,
                |b, t| {
                    b.iter(|| classic_run(t, h, PHYS, 256, 0, N as u64));
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("decoupled", name), trace, |b, t| {
            b.iter(|| {
                let params = IcebergParams::derive(PHYS);
                let mut z = DecoupledMm::new(
                    IcebergAlloc::new(&params, 5),
                    DecoupledConfig {
                        tlb_value_bits: 64,
                        tlb_entries: 256,
                        tlb_policy: PolicyKind::Lru,
                        resident_pages: params.max_resident,
                        ram_policy: PolicyKind::Lru,
                        seed: 5,
                    },
                );
                for &p in t {
                    z.access(p);
                }
                z.costs()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
