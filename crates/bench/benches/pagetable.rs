//! Microbenches for the page-table substrate (A-ptw ablation): radix
//! vs hash translation throughput, and the huge-leaf walk shortening.

use atp_bench::harness::{Criterion, Throughput};
use atp_bench::{criterion_group, criterion_main};
use atp_pagetable::{HashPageTable, PageTable, RadixPageTable};
use atp_types::{PhysPage, VirtPage};
use atp_workloads::Zipfian;

const N: usize = 200_000;
const SPAN: u64 = 1 << 16;

fn bench_tables(c: &mut Criterion) {
    let trace: Vec<VirtPage> = Zipfian::new(1, SPAN, 1.0).take(N).collect();

    let mut radix = RadixPageTable::new();
    let mut hash = HashPageTable::new(2, SPAN);
    for v in 0..SPAN {
        radix.map(VirtPage(v), PhysPage(v));
        hash.map(VirtPage(v), PhysPage(v));
    }
    let mut radix_huge = RadixPageTable::new();
    for i in 0..SPAN / 512 {
        radix_huge.map_huge(VirtPage(i * 512), 1, PhysPage(i * 512));
    }

    let mut group = c.benchmark_group("pagetable_translate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("radix_4level", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &trace {
                acc += radix.translate(v).1.touches;
            }
            acc
        })
    });
    group.bench_function("radix_huge_leaves", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &trace {
                acc += radix_huge.translate(v).1.touches;
            }
            acc
        })
    });
    group.bench_function("hash_open_addressing", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &trace {
                acc += hash.translate(v).1.touches;
            }
            acc
        })
    });
    group.bench_function("radix_with_pwc", |b| {
        use atp_pagetable::CachedWalker;
        b.iter(|| {
            let mut table = RadixPageTable::new();
            for v in 0..SPAN {
                table.map(VirtPage(v), PhysPage(v));
            }
            let mut walker = CachedWalker::new(table, 16);
            let mut acc = 0u64;
            for &v in &trace {
                acc += walker.translate(v).1.touches;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
