//! Microbenches for the balls-and-bins substrate: placement-rule
//! throughput under churn (T-load1/T-load2's engine).

use atp_ballsbins::adversary::{drive, ChurnAdversary};
use atp_ballsbins::{Game, Rule};
use atp_bench::harness::{BenchmarkId, Criterion, Throughput};
use atp_bench::{criterion_group, criterion_main};

const N_BINS: u64 = 1 << 12;
const LAMBDA: u64 = 16;
const OPS: u64 = 200_000;

fn bench_rules(c: &mut Criterion) {
    let rules = [
        ("one_choice", Rule::OneChoice),
        ("greedy2", Rule::Greedy { d: 2 }),
        ("greedy4", Rule::Greedy { d: 4 }),
        ("iceberg2", Rule::Iceberg { front_cap: 18 }),
    ];
    let mut group = c.benchmark_group("ballsbins_churn");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS));
    for (name, rule) in rules {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rule, |b, &rule| {
            b.iter(|| {
                let mut game = Game::new(1, N_BINS, rule);
                let mut adv = ChurnAdversary::new(2, (N_BINS * LAMBDA) as usize);
                drive(&mut game, OPS, || adv.next_op());
                game.max_load()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
